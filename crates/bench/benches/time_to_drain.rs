//! Streaming throughput — wall time for the online pipeline to drain a
//! full arrival stream (every window driven, every task settled),
//! per method and per windowing policy, plus the sharded mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_core::Method;
use dpta_spatial::{Aabb, GridPartition};
use dpta_stream::{
    run_sharded, ArrivalModel, ArrivalStream, StreamConfig, StreamDriver, StreamScenario,
    WindowPolicy,
};
use dpta_workloads::{Dataset, Scenario};
use std::hint::black_box;
use std::time::Duration;

fn bench_stream(scale: f64) -> ArrivalStream {
    StreamScenario {
        scenario: Scenario {
            dataset: Dataset::Normal,
            batch_size: ((1000.0 * scale).round() as usize).max(20),
            n_batches: 2,
            ..Scenario::default()
        },
        task_model: ArrivalModel::Bursty {
            base_rate: 0.05,
            burst_rate: 0.5,
            period: 600.0,
            burst_fraction: 0.25,
        },
        worker_model: ArrivalModel::Poisson { rate: 0.02 },
        initial_worker_fraction: 0.8,
    }
    .stream()
}

fn cfg(policy: WindowPolicy) -> StreamConfig {
    StreamConfig {
        policy,
        ..StreamConfig::default()
    }
}

fn time_to_drain(c: &mut Criterion) {
    let stream = bench_stream(0.1);
    let mut group = c.benchmark_group("stream_time_to_drain");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    for (policy_name, policy) in [
        ("time300s", WindowPolicy::ByTime { width: 300.0 }),
        ("count50", WindowPolicy::ByCount { tasks: 50 }),
    ] {
        for method in [Method::Puce, Method::Pgt, Method::Grd] {
            let cfg = cfg(policy);
            let engine = method.engine(&cfg.params);
            group.bench_with_input(
                BenchmarkId::new(method.name(), policy_name),
                &stream,
                |b, stream| {
                    b.iter(|| {
                        black_box(
                            StreamDriver::new(engine.as_ref(), cfg.clone()).run(black_box(stream)),
                        )
                    })
                },
            );
        }
    }

    // Sharded drain: the parallel mode's end-to-end cost on the same
    // stream (approximate decomposition — the comparison of interest is
    // wall time, not utility).
    let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
    let cfg = cfg(WindowPolicy::ByTime { width: 300.0 });
    let engine = Method::Puce.engine(&cfg.params);
    group.bench_with_input(
        BenchmarkId::new("PUCE", "time300s_sharded2x2"),
        &stream,
        |b, stream| {
            b.iter(|| black_box(run_sharded(engine.as_ref(), black_box(stream), &cfg, &part)))
        },
    );
    group.finish();
}

criterion_group!(benches, time_to_drain);
criterion_main!(benches);
