//! Budget-ledger drain cost — wall time for the push-based
//! `StreamSession` to drain a bursty arrival stream under each
//! accounting policy: lifetime (`CumulativeAccountant`) vs the
//! sliding-window ledger (`WindowedAccountant`, with the pacing
//! controller on). The windowed ledger stamps every charge and pops
//! aged entries at each window cut, so this is where a regression in
//! the reclamation path or the per-window EMA update would surface.
//!
//! Tracked by `bench_gate` in `BENCH_stream.json` from the budget
//! economics redesign onward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_core::Method;
use dpta_stream::{
    ArrivalModel, ArrivalStream, LedgerMode, PacingConfig, ServiceModel, StreamConfig,
    StreamScenario, StreamSession, WindowPolicy,
};
use dpta_workloads::{Dataset, Scenario};
use std::hint::black_box;
use std::time::Duration;

fn bench_stream(scale: f64) -> ArrivalStream {
    StreamScenario {
        scenario: Scenario {
            dataset: Dataset::Normal,
            batch_size: ((1000.0 * scale).round() as usize).max(20),
            n_batches: 2,
            ..Scenario::default()
        },
        task_model: ArrivalModel::Bursty {
            base_rate: 0.05,
            burst_rate: 0.5,
            period: 600.0,
            burst_fraction: 0.25,
        },
        worker_model: ArrivalModel::Poisson { rate: 0.02 },
        initial_worker_fraction: 0.8,
    }
    .stream()
}

fn drain(engine: &dyn dpta_core::AssignmentEngine, cfg: &StreamConfig, stream: &ArrivalStream) {
    let mut session = StreamSession::new(engine, cfg.clone());
    for e in stream.events() {
        session.push(*e);
    }
    black_box(session.close());
}

fn windowed_ledger(c: &mut Criterion) {
    let stream = bench_stream(0.1);
    let mut group = c.benchmark_group("windowed_ledger");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    let modes: [(&str, LedgerMode, Option<PacingConfig>); 3] = [
        ("lifetime", LedgerMode::Lifetime, None),
        (
            "windowed900s",
            LedgerMode::Windowed { window_secs: 900.0 },
            None,
        ),
        (
            "windowed900s_paced",
            LedgerMode::Windowed { window_secs: 900.0 },
            Some(PacingConfig { horizon_windows: 3 }),
        ),
    ];
    for (mode_name, ledger, pacing) in modes {
        for method in [Method::Puce, Method::Grd] {
            let cfg = StreamConfig::builder()
                .policy(WindowPolicy::ByTime { width: 300.0 })
                .worker_capacity(1.5)
                .service(ServiceModel::Fixed { secs: 240.0 })
                .ledger(ledger)
                .pacing(pacing)
                .build()
                .expect("valid bench configuration");
            let engine = method.engine(&cfg.params);
            group.bench_with_input(
                BenchmarkId::new(method.name(), mode_name),
                &stream,
                |b, stream| b.iter(|| drain(engine.as_ref(), &cfg, black_box(stream))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, windowed_ledger);
criterion_main!(benches);
