//! Incremental instance maintenance vs from-scratch rebuilds — the
//! PR 6 tentpole measured directly at the model layer.
//!
//! A streaming pipeline holds a live entity set that churns a little
//! every window (arrivals in, matched/expired out) while most of the
//! set survives. Rebuilding the [`Instance`] each window pays the full
//! O(tasks × workers) reach scan and budget generation every time;
//! maintaining a [`DeltaInstance`] pays O(churn × affected cells) per
//! window plus a linear emission. The gap therefore widens with the
//! window count at fixed churn — exactly the trajectory this bench
//! sweeps (`w4` → `w64`), with both modes ending on an identical
//! instance sequence (the `incremental_properties` suite proves that
//! bit for bit; this bench only times it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_core::{DeltaInstance, Instance, Task, Worker};
use dpta_spatial::Point;
use dpta_workloads::budgets::BudgetGen;
use std::collections::VecDeque;
use std::hint::black_box;
use std::time::Duration;

/// Steady-state live-set sizes and per-window churn: ~12% of tasks and
/// ~13% of workers turn over each window, the regime the streaming
/// drivers sit in between bursts.
const LIVE_TASKS: usize = 240;
const LIVE_WORKERS: usize = 60;
const TASK_CHURN: usize = 30;
const WORKER_CHURN: usize = 8;

/// Deterministic low-discrepancy position for entity `id`: golden-
/// ratio rotation fills the frame evenly, so reach sets stay dense and
/// every window's instance has real edge structure.
fn spot(id: u64) -> Point {
    let g = (id as f64 * 0.618_033_988_749_895).fract();
    let h = (id as f64 * 0.754_877_666_246_693).fract();
    Point::new(g * 100.0, h * 100.0)
}

fn task_at(id: u64) -> Task {
    Task::new(spot(id ^ 0x9E37), 4.0)
}

fn worker_at(id: u64) -> Worker {
    Worker::new(spot(id.wrapping_mul(3) ^ 0x51_7CC1), 9.0)
}

/// Drives `windows` churn rounds rebuilding the instance from scratch
/// each window. Returns a checksum so the work cannot be elided.
fn run_scratch(gen: &BudgetGen, windows: usize) -> usize {
    let mut tasks: VecDeque<(u64, Task)> =
        (0..LIVE_TASKS as u64).map(|id| (id, task_at(id))).collect();
    let mut workers: VecDeque<(u64, Worker)> = (0..LIVE_WORKERS as u64)
        .map(|id| (id, worker_at(id)))
        .collect();
    let mut next_task = LIVE_TASKS as u64;
    let mut next_worker = LIVE_WORKERS as u64;
    let mut pairs = 0usize;
    for _ in 0..windows {
        for _ in 0..TASK_CHURN {
            tasks.pop_front();
            tasks.push_back((next_task, task_at(next_task)));
            next_task += 1;
        }
        for _ in 0..WORKER_CHURN {
            workers.pop_front();
            workers.push_back((next_worker, worker_at(next_worker)));
            next_worker += 1;
        }
        let inst = Instance::from_locations(
            tasks.iter().map(|&(_, t)| t).collect(),
            workers.iter().map(|&(_, w)| w).collect(),
            |i, j| gen.vector(tasks[i].0 as usize, workers[j].0 as usize),
        );
        pairs += black_box(inst.feasible_pairs());
    }
    pairs
}

/// The same churn rounds against a maintained [`DeltaInstance`]: diffs
/// in, emission out.
fn run_delta(gen: &BudgetGen, windows: usize) -> usize {
    let mut delta = DeltaInstance::new();
    let mut task_ids: VecDeque<u64> = (0..LIVE_TASKS as u64).collect();
    let mut worker_ids: VecDeque<u64> = (0..LIVE_WORKERS as u64).collect();
    for &id in &task_ids {
        delta.insert_task(id, task_at(id), |t, w| gen.vector(t as usize, w as usize));
    }
    for &id in &worker_ids {
        delta.insert_worker(id, worker_at(id), |t, w| gen.vector(t as usize, w as usize));
    }
    let mut next_task = LIVE_TASKS as u64;
    let mut next_worker = LIVE_WORKERS as u64;
    let mut pairs = 0usize;
    for _ in 0..windows {
        for _ in 0..TASK_CHURN {
            let old = task_ids.pop_front().expect("live task");
            delta.remove_task(old);
            delta.insert_task(next_task, task_at(next_task), |t, w| {
                gen.vector(t as usize, w as usize)
            });
            task_ids.push_back(next_task);
            next_task += 1;
        }
        for _ in 0..WORKER_CHURN {
            let old = worker_ids.pop_front().expect("live worker");
            delta.remove_worker(old);
            delta.insert_worker(next_worker, worker_at(next_worker), |t, w| {
                gen.vector(t as usize, w as usize)
            });
            worker_ids.push_back(next_worker);
            next_worker += 1;
        }
        let inst = delta.instance();
        pairs += black_box(inst.feasible_pairs());
    }
    pairs
}

fn incremental_window(c: &mut Criterion) {
    let gen = BudgetGen::new(0xA11_0CA7E, 0, (0.2, 1.0), 4);
    // Same churn trajectory in both modes — sanity-check the checksums
    // agree before timing anything.
    assert_eq!(run_scratch(&gen, 4), run_delta(&gen, 4));

    let mut group = c.benchmark_group("incremental_window");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    for windows in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("scratch", format!("w{windows}")),
            &windows,
            |b, &w| b.iter(|| black_box(run_scratch(&gen, black_box(w)))),
        );
        group.bench_with_input(
            BenchmarkId::new("delta", format!("w{windows}")),
            &windows,
            |b, &w| b.iter(|| black_box(run_delta(&gen, black_box(w)))),
        );
    }
    group.finish();
}

criterion_group!(benches, incremental_window);
criterion_main!(benches);
