//! Drop-pairs vs boundary-halo sharding on a *non-disjoint* stream —
//! what the halo protocol costs (reconciliation passes, shard reruns)
//! and what it buys (recovered matches) against the unsharded
//! baseline and the lossy drop-pairs mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_core::Method;
use dpta_spatial::{Aabb, GridPartition};
use dpta_stream::{
    run_sharded_with, ArrivalModel, ArrivalStream, ShardStrategy, StreamConfig, StreamDriver,
    StreamScenario, WindowPolicy,
};
use dpta_workloads::{Dataset, Scenario};
use std::hint::black_box;
use std::time::Duration;

/// A Table X workload streamed over the full frame: worker discs land
/// wherever the generator puts them, so plenty straddle the 2×2 grid's
/// boundaries — the regime drop-pairs silently truncates.
fn crossing_stream(scale: f64) -> ArrivalStream {
    StreamScenario {
        scenario: Scenario {
            dataset: Dataset::Uniform,
            batch_size: ((1000.0 * scale).round() as usize).max(20),
            n_batches: 2,
            worker_range: 4.0, // wide discs: many boundary crossings
            ..Scenario::default()
        },
        task_model: ArrivalModel::Bursty {
            base_rate: 0.05,
            burst_rate: 0.5,
            period: 600.0,
            burst_fraction: 0.25,
        },
        worker_model: ArrivalModel::Poisson { rate: 0.02 },
        initial_worker_fraction: 0.8,
    }
    .stream()
}

fn halo_sharding(c: &mut Criterion) {
    let stream = crossing_stream(0.1);
    let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
    let cfg = StreamConfig {
        policy: WindowPolicy::ByTime { width: 300.0 },
        ..StreamConfig::default()
    };

    let mut group = c.benchmark_group("halo_sharding");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));

    for method in [Method::Puce, Method::Grd] {
        let engine = method.engine(&cfg.params);
        group.bench_with_input(
            BenchmarkId::new(method.name(), "unsharded"),
            &stream,
            |b, stream| {
                b.iter(|| {
                    black_box(
                        StreamDriver::new(engine.as_ref(), cfg.clone()).run(black_box(stream)),
                    )
                })
            },
        );
        for (label, strategy) in [
            ("drop_pairs2x2", ShardStrategy::DropPairs),
            ("halo2x2", ShardStrategy::Halo),
        ] {
            group.bench_with_input(
                BenchmarkId::new(method.name(), label),
                &stream,
                |b, stream| {
                    b.iter(|| {
                        black_box(run_sharded_with(
                            engine.as_ref(),
                            black_box(stream),
                            &cfg,
                            &part,
                            strategy,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, halo_sharding);
criterion_main!(benches);
