//! Figures 5–10 and 19–21 — average utility and its relative deviation
//! under the task-value, worker-range and worker-ratio sweeps.
//!
//! Criterion times the utility-objective engines on each data set; the
//! swept utility series themselves are printed once at startup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_bench::{bench_instance, print_figures};
use dpta_core::{Method, RunParams};
use dpta_dp::SeededNoise;
use dpta_workloads::Dataset;
use std::hint::black_box;
use std::time::Duration;

fn utility_engines(c: &mut Criterion) {
    print_figures(&[
        "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig19", "fig20", "fig21",
    ]);

    let params = RunParams::default();
    let mut group = c.benchmark_group("utility_engines");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    for dataset in [Dataset::Chengdu, Dataset::Normal, Dataset::Uniform] {
        let inst = bench_instance(dataset, 5);
        for method in [Method::Puce, Method::Uce, Method::Pgt, Method::Gt] {
            let engine = method.engine(&params);
            let noise = SeededNoise::new(params.seed);
            group.bench_with_input(
                BenchmarkId::new(method.name(), dataset.name()),
                &inst,
                |b, inst| b.iter(|| black_box(engine.run(black_box(inst), &noise))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, utility_engines);
criterion_main!(benches);
