//! Microbenches of the substrates the assignment loops lean on:
//! PCF/PPCF evaluation, MLE effective pairs, grid range queries,
//! Hungarian matching, and CEA conflict resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_dp::{pcf, ppcf, ReleaseSet};
use dpta_matching::cea::{conflict_elimination, CeaFallback};
use dpta_matching::hungarian::max_weight_matching;
use dpta_spatial::{Circle, GridIndex, Point};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn compare_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("compare_functions");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.bench_function("pcf_distinct_eps", |b| {
        b.iter(|| black_box(pcf(black_box(0.8), black_box(1.1), 0.7, 1.6)))
    });
    group.bench_function("pcf_equal_eps", |b| {
        b.iter(|| black_box(pcf(black_box(0.8), black_box(1.1), 1.0, 1.0)))
    });
    group.bench_function("ppcf", |b| {
        b.iter(|| black_box(ppcf(black_box(0.8), black_box(1.1), 1.0)))
    });
    group.finish();
}

fn effective_pair(c: &mut Criterion) {
    let pairs: Vec<(f64, f64)> = (0..7)
        .map(|k| (1.0 + 0.01 * k as f64, 0.5 + 0.15 * k as f64))
        .collect();
    let mut group = c.benchmark_group("mle");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.bench_function("mle_effective_pair_z7", |b| {
        b.iter(|| {
            let set = ReleaseSet::from_pairs(black_box(&pairs));
            black_box(set.effective())
        })
    });
    group.finish();
}

fn grid_queries(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let points: Vec<Point> = (0..100_000)
        .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
        .collect();
    let idx = GridIndex::build_for_radius(&points, 1.4);
    let mut buf = Vec::new();
    let mut group = c.benchmark_group("grid");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.bench_function("grid_circle_query_100k_r1.4", |b| {
        b.iter(|| {
            let center = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            idx.query_circle_into(&Circle::new(center, 1.4), &mut buf);
            black_box(buf.len())
        })
    });
    group.finish();
}

fn hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    for n in [20usize, 60] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let w: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.0..10.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(max_weight_matching(n, n, |i, j| Some(w[i * n + j]))))
        });
    }
    group.finish();
}

fn cea(c: &mut Criterion) {
    #[derive(Clone, Copy)]
    struct Cand(usize, f64);
    let mut rng = StdRng::seed_from_u64(3);
    let n_workers = 80usize;
    let rows: Vec<Vec<Cand>> = (0..40)
        .map(|_| {
            let mut row: Vec<Cand> = Vec::new();
            for w in 0..n_workers {
                if rng.gen_bool(0.2) {
                    row.push(Cand(w, rng.gen_range(0.0..5.0)));
                }
            }
            row.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            row
        })
        .collect();
    let prob = |a: &Cand, b: &Cand| if a.1 < b.1 { 1.0 } else { 0.0 };
    let mut group = c.benchmark_group("cea");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.bench_function("within_round_40x80", |b| {
        b.iter(|| {
            black_box(conflict_elimination(
                black_box(&rows),
                n_workers,
                |c: &Cand| c.0,
                prob,
                CeaFallback::WithinRound,
            ))
        })
    });
    group.bench_function("cross_round_40x80", |b| {
        b.iter(|| {
            black_box(conflict_elimination(
                black_box(&rows),
                n_workers,
                |c: &Cand| c.0,
                prob,
                CeaFallback::CrossRound,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    compare_functions,
    effective_pair,
    grid_queries,
    hungarian,
    cea
);
criterion_main!(benches);
