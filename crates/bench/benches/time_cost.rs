//! Figure 4 / Figure 18 — running time vs worker ratio.
//!
//! The timed bodies measure each method's assignment time on a
//! default-parameter batch; the full swept series (the figure itself)
//! is printed once at startup via the experiments runner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_bench::{bench_options, print_figures};
use dpta_core::{Method, RunParams};
use dpta_dp::SeededNoise;
use dpta_workloads::{Dataset, Scenario};
use std::hint::black_box;
use std::time::Duration;

fn time_vs_ratio(c: &mut Criterion) {
    print_figures(&["fig04", "fig18"]);

    let params = RunParams::default();
    for dataset in [Dataset::Chengdu, Dataset::Normal, Dataset::Uniform] {
        let mut group = c.benchmark_group(format!("fig04_time/{dataset}"));
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(400));
        group.measurement_time(Duration::from_millis(1200));
        for ratio in [1.0, 2.0, 3.0] {
            let sc = Scenario {
                dataset,
                worker_task_ratio: ratio,
                batch_size: bench_options().batch_size(),
                n_batches: 1,
                ..Scenario::default()
            };
            let inst = sc.batches().remove(0);
            for method in [Method::Puce, Method::Pdce, Method::Pgt, Method::Grd] {
                let engine = method.engine(&params);
                let noise = SeededNoise::new(params.seed);
                group.bench_with_input(
                    BenchmarkId::new(method.name(), format!("ratio{ratio}")),
                    &inst,
                    |b, inst| b.iter(|| black_box(engine.run(black_box(inst), &noise))),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, time_vs_ratio);
criterion_main!(benches);
