//! Adaptive windowing cost — what the latency-targeting controller
//! costs (and saves) against a static width as burst intensity grows.
//!
//! Sweeps the bursty arrival model's peak rate: at low intensity the
//! adaptive run degenerates to near-static behaviour; at high
//! intensity burst cuts multiply the window count (more, smaller
//! engine drives) while the static policy piles the whole burst into
//! one instance. The interesting number is how the *drain time* moves
//! with that trade, per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_core::Method;
use dpta_stream::{
    AdaptivePolicy, ArrivalModel, ArrivalStream, StreamConfig, StreamDriver, StreamScenario,
    WindowPolicy,
};
use dpta_workloads::{Dataset, Scenario};
use std::hint::black_box;
use std::time::Duration;

/// The comparison stream at one burst intensity (peak arrivals/s).
fn bursty_stream(burst_rate: f64) -> ArrivalStream {
    StreamScenario {
        scenario: Scenario {
            dataset: Dataset::Normal,
            batch_size: 100,
            n_batches: 2,
            ..Scenario::default()
        },
        task_model: ArrivalModel::Bursty {
            base_rate: 0.05,
            burst_rate,
            period: 600.0,
            burst_fraction: 0.25,
        },
        worker_model: ArrivalModel::Poisson { rate: 0.02 },
        initial_worker_fraction: 0.8,
    }
    .stream()
}

fn adaptive_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_window");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    for burst_rate in [0.2, 0.5, 1.0] {
        let stream = bursty_stream(burst_rate);
        for (policy_name, policy) in [
            (
                "adaptive",
                WindowPolicy::Adaptive(AdaptivePolicy::default()),
            ),
            ("time300s", WindowPolicy::ByTime { width: 300.0 }),
        ] {
            let cfg = StreamConfig {
                policy,
                ..StreamConfig::default()
            };
            for method in [Method::Puce, Method::Grd] {
                let engine = method.engine(&cfg.params);
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{}_{policy_name}", method.name()),
                        format!("burst{burst_rate}"),
                    ),
                    &stream,
                    |b, stream| {
                        b.iter(|| {
                            black_box(
                                StreamDriver::new(engine.as_ref(), cfg.clone())
                                    .run(black_box(stream)),
                            )
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, adaptive_window);
criterion_main!(benches);
