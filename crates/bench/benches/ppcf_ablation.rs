//! Figure 17 / Figure 25 — the PPCF vs non-PPCF ablation, plus an
//! ablation of the engine knobs the paper leaves ambiguous (proposal
//! accounting and CEA fallback; see DESIGN.md §2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_bench::{bench_instance, print_figures};
use dpta_core::config::{CeaFallback, ProposalAccounting};
use dpta_core::{Method, RunParams};
use dpta_dp::SeededNoise;
use dpta_workloads::Dataset;
use std::hint::black_box;
use std::time::Duration;

fn ppcf_ablation(c: &mut Criterion) {
    print_figures(&["fig17", "fig25"]);

    let params = RunParams::default();
    let mut group = c.benchmark_group("ppcf_ablation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    for dataset in [Dataset::Chengdu, Dataset::Normal] {
        let inst = bench_instance(dataset, 17);
        for method in [
            Method::Puce,
            Method::PuceNppcf,
            Method::Pdce,
            Method::PdceNppcf,
        ] {
            let engine = method.engine(&params);
            let noise = SeededNoise::new(params.seed);
            group.bench_with_input(
                BenchmarkId::new(method.name(), dataset.name()),
                &inst,
                |b, inst| b.iter(|| black_box(engine.run(black_box(inst), &noise))),
            );
        }
    }
    group.finish();
}

/// DESIGN.md §2 ablation: the two readings of Eq. 2's proposal
/// accounting and of CEA's loser fallback.
fn knob_ablation(c: &mut Criterion) {
    let inst = bench_instance(Dataset::Chengdu, 23);
    let mut group = c.benchmark_group("knob_ablation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    for accounting in [ProposalAccounting::PerTask, ProposalAccounting::Cumulative] {
        for fallback in [CeaFallback::CrossRound, CeaFallback::WithinRound] {
            let params = RunParams {
                accounting,
                fallback,
                ..RunParams::default()
            };
            let engine = Method::Puce.engine(&params);
            let noise = SeededNoise::new(params.seed);
            group.bench_with_input(
                BenchmarkId::new("PUCE", format!("{accounting:?}/{fallback:?}")),
                &inst,
                |b, inst| b.iter(|| black_box(engine.run(black_box(inst), &noise))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, ppcf_ablation, knob_ablation);
criterion_main!(benches);
