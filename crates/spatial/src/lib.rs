//! Planar geometry and spatial indexing substrate for the DPTA workspace.
//!
//! The paper's task-assignment algorithms operate on Euclidean distances
//! between task and worker locations, and repeatedly ask "which tasks fall
//! inside worker `w`'s service area?" (a disc of radius `r_j`, Definition 2
//! of the paper). This crate provides:
//!
//! * [`Point`] — a 2-D point in kilometres with the usual vector algebra;
//! * [`Aabb`] — axis-aligned bounding boxes, used both by the grid index
//!   and by the workload generators to describe data-set frames;
//! * [`Circle`] — worker service areas;
//! * [`GridIndex`] — a uniform-grid point index answering circular range
//!   queries in expected O(k) for k results, which turns the
//!   all-pairs-distances step from O(m·n) into O(m + n + matches);
//! * [`GridPartition`] — a fixed rectangular grid mapping locations to
//!   shard ids, the spatial sharding key of the streaming pipeline,
//!   with interior-vs-halo classification
//!   ([`GridPartition::halo_shards`], [`GridPartition::halo_members`])
//!   for the cross-shard halo protocol;
//! * [`DistanceMatrix`] — a dense task×worker distance table for the small
//!   per-batch instances the assignment algorithms run on.
//!
//! Everything here is deterministic and allocation-conscious: queries can
//! write into caller-provided buffers so the per-round loops of PUCE/PGT
//! do not allocate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod bbox;
mod circle;
mod distmat;
mod grid;
mod point;

pub use bbox::Aabb;
pub use circle::Circle;
pub use distmat::DistanceMatrix;
pub use grid::{GridIndex, GridPartition};
pub use point::Point;
