//! 2-D points in the plane (kilometre coordinates).

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Sub};

/// A point (or displacement vector) in the 2-D plane.
///
/// Coordinates are kilometres throughout the workspace, matching the
/// paper's Chengdu frame (UTM-style km coordinates, Fig. 3) and the
/// synthetic 100×100 plane of Section VII-A.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in km.
    pub x: f64,
    /// Northing in km.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the `sqrt` when only
    /// comparisons are needed, e.g. inside the grid index).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// L1 (Manhattan) distance to `other`; used by the street-grid
    /// workload generator where travel follows axis-aligned streets.
    #[inline]
    pub fn manhattan_distance(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean norm of the point treated as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Component-wise midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Returns true when both coordinates are finite (not NaN/∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(-7.25, 11.5);
        assert_eq!(p.distance(&p), 0.0);
    }

    #[test]
    fn manhattan_distance_matches_hand_value() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, -2.0);
        assert_eq!(a.manhattan_distance(&b), 7.0);
    }

    #[test]
    fn vector_algebra() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        assert_eq!(a.midpoint(&b), a.lerp(&b, 0.5));
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn is_finite_rejects_nan() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    proptest! {
        #[test]
        fn distance_symmetry(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                             bx in -1e3f64..1e3, by in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        }

        #[test]
        fn triangle_inequality(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                               bx in -1e3f64..1e3, by in -1e3f64..1e3,
                               cx in -1e3f64..1e3, cy in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }

        #[test]
        fn euclidean_le_manhattan(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                                  bx in -1e3f64..1e3, by in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!(a.distance(&b) <= a.manhattan_distance(&b) + 1e-9);
        }
    }
}
