//! Uniform-grid point index for circular range queries.
//!
//! Worker service areas are small relative to the data-set frame (range
//! 0.8–2 km inside a ≥100 km frame in the paper's settings, Table X), so
//! a uniform grid bucketing points by cell gives near-O(k) circular
//! queries without the constant factors of tree indexes.

use crate::{Aabb, Circle, Point};

/// A static point index over a fixed set of points.
///
/// Build once per batch with [`GridIndex::build`], then answer service-area
/// queries with [`GridIndex::query_circle`]. Point identity is the index
/// into the slice passed at build time, so callers can map results back to
/// tasks/workers without storing payloads in the index.
#[derive(Debug, Clone)]
pub struct GridIndex {
    bounds: Aabb,
    cell_size: f64,
    cols: usize,
    rows: usize,
    /// CSR-style layout: `cell_start[c]..cell_start[c+1]` indexes into
    /// `entries` for cell `c`. Avoids a Vec-per-cell allocation storm.
    cell_start: Vec<u32>,
    entries: Vec<u32>,
    points: Vec<Point>,
}

impl GridIndex {
    /// Builds an index over `points` with the given `cell_size` (km).
    ///
    /// `cell_size` should be on the order of the typical query radius;
    /// [`GridIndex::build_for_radius`] picks it automatically. Panics if
    /// `cell_size` is not strictly positive or any point is non-finite.
    pub fn build(points: &[Point], cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be finite and > 0, got {cell_size}"
        );
        for (i, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point #{i} is not finite: {p:?}");
        }
        let bounds =
            Aabb::bounding(points).unwrap_or_else(|| Aabb::new(Point::ORIGIN, Point::ORIGIN));
        // Grid dimensions, capped to keep memory proportional to the data.
        let max_cells_per_axis = ((points.len().max(1) as f64).sqrt() as usize * 4).max(1);
        let cols = ((bounds.width() / cell_size).ceil() as usize + 1).clamp(1, max_cells_per_axis);
        let rows = ((bounds.height() / cell_size).ceil() as usize + 1).clamp(1, max_cells_per_axis);
        // Recompute effective cell size from the clamped dimensions so the
        // whole frame is always covered.
        let eff_cell = (bounds.width() / cols as f64)
            .max(bounds.height() / rows as f64)
            .max(cell_size);

        let n_cells = cols * rows;
        let mut counts = vec![0u32; n_cells + 1];
        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - bounds.min.x) / eff_cell) as usize).min(cols - 1);
            let cy = (((p.y - bounds.min.y) / eff_cell) as usize).min(rows - 1);
            cy * cols + cx
        };
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for c in 0..n_cells {
            counts[c + 1] += counts[c];
        }
        let mut entries = vec![0u32; points.len()];
        let mut cursor = counts.clone();
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        GridIndex {
            bounds,
            cell_size: eff_cell,
            cols,
            rows,
            cell_start: counts,
            entries,
            points: points.to_vec(),
        }
    }

    /// Builds an index sized for circular queries of roughly `radius` km.
    pub fn build_for_radius(points: &[Point], radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "radius must be finite and > 0, got {radius}"
        );
        Self::build(points, radius)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in build order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Collects the indices of all points inside `circle` into `out`
    /// (cleared first). Results are sorted ascending so downstream
    /// algorithms iterate tasks in a stable order.
    pub fn query_circle_into(&self, circle: &Circle, out: &mut Vec<usize>) {
        out.clear();
        if self.points.is_empty() {
            return;
        }
        let bb = circle.bounding_box();
        if !bb.intersects(&self.bounds) {
            return;
        }
        let clamp_cell = |v: f64, max: usize| -> usize {
            if v <= 0.0 {
                0
            } else {
                (v as usize).min(max - 1)
            }
        };
        let cx0 = clamp_cell((bb.min.x - self.bounds.min.x) / self.cell_size, self.cols);
        let cx1 = clamp_cell((bb.max.x - self.bounds.min.x) / self.cell_size, self.cols);
        let cy0 = clamp_cell((bb.min.y - self.bounds.min.y) / self.cell_size, self.rows);
        let cy1 = clamp_cell((bb.max.y - self.bounds.min.y) / self.cell_size, self.rows);
        let r_sq = circle.radius * circle.radius;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let c = cy * self.cols + cx;
                let lo = self.cell_start[c] as usize;
                let hi = self.cell_start[c + 1] as usize;
                for &idx in &self.entries[lo..hi] {
                    let p = &self.points[idx as usize];
                    if circle.center.distance_sq(p) <= r_sq {
                        out.push(idx as usize);
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// Allocating convenience wrapper around
    /// [`query_circle_into`](Self::query_circle_into).
    pub fn query_circle(&self, circle: &Circle) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_circle_into(circle, &mut out);
        out
    }

    /// Index of the nearest point to `from`, or `None` if empty.
    /// Ties are broken toward the smaller index for determinism.
    pub fn nearest(&self, from: &Point) -> Option<usize> {
        // Expanding ring search over grid cells; falls back to a full scan
        // only when the ring has exhausted the grid.
        if self.points.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in self.points.iter().enumerate() {
            let d = from.distance_sq(p);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((i, d)),
            }
        }
        best.map(|(i, _)| i)
    }
}

/// A fixed rectangular grid over a frame, mapping points to shard ids.
///
/// Where [`GridIndex`] answers range queries over one point set, a
/// `GridPartition` is a pure *function* from locations to cells — the
/// spatial sharding key of the streaming pipeline: every arrival is
/// routed to the shard owning its cell, and one assignment engine runs
/// per shard. Points outside the frame are clamped to the border cells
/// so the partition is total.
///
/// # Examples
///
/// ```
/// use dpta_spatial::{Aabb, GridPartition, Point};
///
/// let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 4, 4);
/// assert_eq!(part.n_shards(), 16);
/// assert_eq!(part.shard_of(&Point::new(10.0, 10.0)), 0);
/// assert_eq!(part.shard_of(&Point::new(99.0, 99.0)), 15);
/// // Out-of-frame points clamp to the nearest border cell.
/// assert_eq!(part.shard_of(&Point::new(-5.0, 1.0)), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPartition {
    frame: Aabb,
    cols: usize,
    rows: usize,
}

impl GridPartition {
    /// Builds a `cols × rows` partition of `frame`. Panics unless both
    /// dimensions are positive and the frame has positive extent.
    pub fn new(frame: Aabb, cols: usize, rows: usize) -> Self {
        assert!(
            cols > 0 && rows > 0,
            "partition needs cols > 0 and rows > 0"
        );
        assert!(
            frame.width() > 0.0 && frame.height() > 0.0,
            "partition frame must have positive extent"
        );
        GridPartition { frame, cols, rows }
    }

    /// Number of shards (`cols × rows`).
    pub fn n_shards(&self) -> usize {
        self.cols * self.rows
    }

    /// Columns of the partition.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows of the partition.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The partitioned frame.
    pub fn frame(&self) -> &Aabb {
        &self.frame
    }

    /// The shard owning `p`: row-major cell index, clamped to the frame.
    pub fn shard_of(&self, p: &Point) -> usize {
        assert!(p.is_finite(), "cannot shard a non-finite point: {p:?}");
        let fx = (p.x - self.frame.min.x) / self.frame.width();
        let fy = (p.y - self.frame.min.y) / self.frame.height();
        let cx = ((fx * self.cols as f64) as isize).clamp(0, self.cols as isize - 1) as usize;
        let cy = ((fy * self.rows as f64) as isize).clamp(0, self.rows as isize - 1) as usize;
        cy * self.cols + cx
    }

    /// Whether a disc of radius `r` around `p` can only contain points
    /// mapping to `p`'s own cell — i.e. whether an entity at `p` with
    /// service radius `r` can never interact across a shard boundary.
    /// Sharded and unsharded runs agree exactly on inputs where this
    /// holds for every worker (the shard-disjointness precondition of
    /// the streaming pipeline).
    ///
    /// The bounds mirror [`shard_of`](Self::shard_of) and the closed
    /// service areas of the assignment model: a cell's upper edge
    /// belongs to the *next* cell (so the disc must stay strictly
    /// below it), its lower edge belongs to the cell itself, and
    /// frame-edge cells absorb everything beyond the frame through
    /// clamping (so their outward side is unconstrained).
    pub fn is_interior(&self, p: &Point, r: f64) -> bool {
        assert!(r.is_finite() && r >= 0.0, "radius must be finite and >= 0");
        let cell_w = self.frame.width() / self.cols as f64;
        let cell_h = self.frame.height() / self.rows as f64;
        let shard = self.shard_of(p);
        let (cx, cy) = (shard % self.cols, shard / self.cols);
        let x0 = self.frame.min.x + cx as f64 * cell_w;
        let y0 = self.frame.min.y + cy as f64 * cell_h;
        (cx == 0 || p.x - r >= x0)
            && (cx + 1 == self.cols || p.x + r < x0 + cell_w)
            && (cy == 0 || p.y - r >= y0)
            && (cy + 1 == self.rows || p.y + r < y0 + cell_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_force(points: &[Point], circle: &Circle) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| circle.contains(p))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = GridIndex::build(&[], 1.0);
        assert!(idx.is_empty());
        assert!(idx
            .query_circle(&Circle::new(Point::ORIGIN, 10.0))
            .is_empty());
        assert_eq!(idx.nearest(&Point::ORIGIN), None);
    }

    #[test]
    fn single_point() {
        let idx = GridIndex::build(&[Point::new(5.0, 5.0)], 1.0);
        assert_eq!(
            idx.query_circle(&Circle::new(Point::new(5.2, 5.0), 0.5)),
            vec![0]
        );
        assert!(idx
            .query_circle(&Circle::new(Point::new(9.0, 9.0), 0.5))
            .is_empty());
        assert_eq!(idx.nearest(&Point::ORIGIN), Some(0));
    }

    #[test]
    fn identical_points_all_returned() {
        let pts = vec![Point::new(1.0, 1.0); 7];
        let idx = GridIndex::build(&pts, 0.5);
        let res = idx.query_circle(&Circle::new(Point::new(1.0, 1.0), 0.1));
        assert_eq!(res, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        let mut rng = StdRng::seed_from_u64(42);
        let points: Vec<Point> = (0..2000)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let idx = GridIndex::build_for_radius(&points, 1.4);
        for _ in 0..50 {
            let c = Circle::new(
                Point::new(rng.gen_range(-5.0..105.0), rng.gen_range(-5.0..105.0)),
                rng.gen_range(0.1..8.0),
            );
            assert_eq!(idx.query_circle(&c), brute_force(&points, &c));
        }
    }

    #[test]
    fn query_outside_bounds_is_empty() {
        let points = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let idx = GridIndex::build(&points, 1.0);
        assert!(idx
            .query_circle(&Circle::new(Point::new(100.0, 100.0), 2.0))
            .is_empty());
    }

    #[test]
    fn reusing_buffer_clears_previous_results() {
        let points = vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        let idx = GridIndex::build(&points, 1.0);
        let mut buf = Vec::new();
        idx.query_circle_into(&Circle::new(Point::ORIGIN, 1.0), &mut buf);
        assert_eq!(buf, vec![0]);
        idx.query_circle_into(&Circle::new(Point::new(10.0, 10.0), 1.0), &mut buf);
        assert_eq!(buf, vec![1]);
    }

    #[test]
    fn nearest_breaks_ties_to_lower_index() {
        let points = vec![Point::new(1.0, 0.0), Point::new(-1.0, 0.0)];
        let idx = GridIndex::build(&points, 1.0);
        assert_eq!(idx.nearest(&Point::ORIGIN), Some(0));
    }

    #[test]
    fn partition_is_total_and_row_major() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 3);
        assert_eq!(part.n_shards(), 6);
        assert_eq!(part.cols(), 2);
        assert_eq!(part.rows(), 3);
        assert_eq!(part.shard_of(&Point::new(1.0, 1.0)), 0);
        assert_eq!(part.shard_of(&Point::new(6.0, 1.0)), 1);
        assert_eq!(part.shard_of(&Point::new(1.0, 4.0)), 2);
        assert_eq!(part.shard_of(&Point::new(9.9, 9.9)), 5);
        // Boundary and out-of-frame points clamp.
        assert_eq!(part.shard_of(&Point::new(10.0, 10.0)), 5);
        assert_eq!(part.shard_of(&Point::new(-3.0, 50.0)), 4);
    }

    #[test]
    fn partition_interior_test_respects_radius() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 2);
        // Cell (0,0) spans [0,5)×[0,5); its centre is interior for r < 2.5.
        assert!(part.is_interior(&Point::new(2.5, 2.5), 2.0));
        assert!(!part.is_interior(&Point::new(2.5, 2.5), 3.0));
        assert!(!part.is_interior(&Point::new(4.9, 2.5), 0.5));
        // A disc *touching* the upper edge reaches the boundary point,
        // which maps to the neighbouring cell (shard_of's half-open
        // cells) and is inside the closed service area — not interior.
        assert!(!part.is_interior(&Point::new(2.5, 2.5), 2.5));
        // Frame-edge cells absorb everything beyond the frame by
        // clamping, so their outward side is unconstrained…
        assert!(part.is_interior(&Point::new(9.0, 9.0), 3.0));
        // …but their inward side still is.
        assert!(!part.is_interior(&Point::new(9.0, 2.5), 5.0));
    }

    #[test]
    #[should_panic(expected = "cols > 0")]
    fn degenerate_partition_panics() {
        let _ = GridPartition::new(Aabb::from_extents(0.0, 0.0, 1.0, 1.0), 0, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn partition_shard_is_stable_and_in_range(
            x in -20.0f64..120.0, y in -20.0f64..120.0,
            cols in 1usize..8, rows in 1usize..8,
        ) {
            let part = GridPartition::new(
                Aabb::from_extents(0.0, 0.0, 100.0, 100.0), cols, rows);
            let s = part.shard_of(&Point::new(x, y));
            prop_assert!(s < part.n_shards());
            prop_assert_eq!(s, part.shard_of(&Point::new(x, y)));
        }

        #[test]
        fn grid_equals_brute_force(
            pts in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), 0..200),
            qx in -10.0f64..60.0, qy in -10.0f64..60.0, r in 0.01f64..10.0,
            cell in 0.1f64..5.0,
        ) {
            let points: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let idx = GridIndex::build(&points, cell);
            let c = Circle::new(Point::new(qx, qy), r);
            prop_assert_eq!(idx.query_circle(&c), brute_force(&points, &c));
        }
    }
}
