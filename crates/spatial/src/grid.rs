//! Uniform-grid point index for circular range queries.
//!
//! Worker service areas are small relative to the data-set frame (range
//! 0.8–2 km inside a ≥100 km frame in the paper's settings, Table X), so
//! a uniform grid bucketing points by cell gives near-O(k) circular
//! queries without the constant factors of tree indexes.

use crate::{Aabb, Circle, Point};

/// A static point index over a fixed set of points.
///
/// Build once per batch with [`GridIndex::build`], then answer service-area
/// queries with [`GridIndex::query_circle`]. Point identity is the index
/// into the slice passed at build time, so callers can map results back to
/// tasks/workers without storing payloads in the index.
#[derive(Debug, Clone)]
pub struct GridIndex {
    bounds: Aabb,
    cell_size: f64,
    cols: usize,
    rows: usize,
    /// CSR-style layout: `cell_start[c]..cell_start[c+1]` indexes into
    /// `entries` for cell `c`. Avoids a Vec-per-cell allocation storm.
    cell_start: Vec<u32>,
    entries: Vec<u32>,
    points: Vec<Point>,
}

impl GridIndex {
    /// Builds an index over `points` with the given `cell_size` (km).
    ///
    /// `cell_size` should be on the order of the typical query radius;
    /// [`GridIndex::build_for_radius`] picks it automatically. Panics if
    /// `cell_size` is not strictly positive or any point is non-finite.
    pub fn build(points: &[Point], cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be finite and > 0, got {cell_size}"
        );
        for (i, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point #{i} is not finite: {p:?}");
        }
        let bounds =
            Aabb::bounding(points).unwrap_or_else(|| Aabb::new(Point::ORIGIN, Point::ORIGIN));
        // Grid dimensions, capped to keep memory proportional to the data.
        let max_cells_per_axis = ((points.len().max(1) as f64).sqrt() as usize * 4).max(1);
        let cols = ((bounds.width() / cell_size).ceil() as usize + 1).clamp(1, max_cells_per_axis);
        let rows = ((bounds.height() / cell_size).ceil() as usize + 1).clamp(1, max_cells_per_axis);
        // Recompute effective cell size from the clamped dimensions so the
        // whole frame is always covered.
        let eff_cell = (bounds.width() / cols as f64)
            .max(bounds.height() / rows as f64)
            .max(cell_size);

        let n_cells = cols * rows;
        let mut counts = vec![0u32; n_cells + 1];
        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - bounds.min.x) / eff_cell) as usize).min(cols - 1);
            let cy = (((p.y - bounds.min.y) / eff_cell) as usize).min(rows - 1);
            cy * cols + cx
        };
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for c in 0..n_cells {
            counts[c + 1] += counts[c];
        }
        let mut entries = vec![0u32; points.len()];
        let mut cursor = counts.clone();
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        GridIndex {
            bounds,
            cell_size: eff_cell,
            cols,
            rows,
            cell_start: counts,
            entries,
            points: points.to_vec(),
        }
    }

    /// Builds an index sized for circular queries of roughly `radius` km.
    pub fn build_for_radius(points: &[Point], radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "radius must be finite and > 0, got {radius}"
        );
        Self::build(points, radius)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in build order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Collects the indices of all points inside `circle` into `out`
    /// (cleared first). Results are sorted ascending so downstream
    /// algorithms iterate tasks in a stable order.
    pub fn query_circle_into(&self, circle: &Circle, out: &mut Vec<usize>) {
        out.clear();
        if self.points.is_empty() {
            return;
        }
        let bb = circle.bounding_box();
        if !bb.intersects(&self.bounds) {
            return;
        }
        let clamp_cell = |v: f64, max: usize| -> usize {
            if v <= 0.0 {
                0
            } else {
                (v as usize).min(max - 1)
            }
        };
        let cx0 = clamp_cell((bb.min.x - self.bounds.min.x) / self.cell_size, self.cols);
        let cx1 = clamp_cell((bb.max.x - self.bounds.min.x) / self.cell_size, self.cols);
        let cy0 = clamp_cell((bb.min.y - self.bounds.min.y) / self.cell_size, self.rows);
        let cy1 = clamp_cell((bb.max.y - self.bounds.min.y) / self.cell_size, self.rows);
        let r_sq = circle.radius * circle.radius;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let c = cy * self.cols + cx;
                let lo = self.cell_start[c] as usize;
                let hi = self.cell_start[c + 1] as usize;
                for &idx in &self.entries[lo..hi] {
                    let p = &self.points[idx as usize];
                    if circle.center.distance_sq(p) <= r_sq {
                        out.push(idx as usize);
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// Allocating convenience wrapper around
    /// [`query_circle_into`](Self::query_circle_into).
    pub fn query_circle(&self, circle: &Circle) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_circle_into(circle, &mut out);
        out
    }

    /// Index of the nearest point to `from`, or `None` if empty.
    /// Ties are broken toward the smaller index for determinism.
    pub fn nearest(&self, from: &Point) -> Option<usize> {
        // Expanding ring search over grid cells; falls back to a full scan
        // only when the ring has exhausted the grid.
        if self.points.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in self.points.iter().enumerate() {
            let d = from.distance_sq(p);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((i, d)),
            }
        }
        best.map(|(i, _)| i)
    }
}

/// A fixed rectangular grid over a frame, mapping points to shard ids.
///
/// Where [`GridIndex`] answers range queries over one point set, a
/// `GridPartition` is a pure *function* from locations to cells — the
/// spatial sharding key of the streaming pipeline: every arrival is
/// routed to the shard owning its cell, and one assignment engine runs
/// per shard. Points outside the frame are clamped to the border cells
/// so the partition is total.
///
/// # Examples
///
/// ```
/// use dpta_spatial::{Aabb, GridPartition, Point};
///
/// let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 4, 4);
/// assert_eq!(part.n_shards(), 16);
/// assert_eq!(part.shard_of(&Point::new(10.0, 10.0)), 0);
/// assert_eq!(part.shard_of(&Point::new(99.0, 99.0)), 15);
/// // Out-of-frame points clamp to the nearest border cell.
/// assert_eq!(part.shard_of(&Point::new(-5.0, 1.0)), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPartition {
    frame: Aabb,
    cols: usize,
    rows: usize,
}

impl GridPartition {
    /// Builds a `cols × rows` partition of `frame`. Panics unless both
    /// dimensions are positive and the frame has positive extent.
    pub fn new(frame: Aabb, cols: usize, rows: usize) -> Self {
        assert!(
            cols > 0 && rows > 0,
            "partition needs cols > 0 and rows > 0"
        );
        assert!(
            frame.width() > 0.0 && frame.height() > 0.0,
            "partition frame must have positive extent"
        );
        GridPartition { frame, cols, rows }
    }

    /// Number of shards (`cols × rows`).
    pub fn n_shards(&self) -> usize {
        self.cols * self.rows
    }

    /// Columns of the partition.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows of the partition.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The partitioned frame.
    pub fn frame(&self) -> &Aabb {
        &self.frame
    }

    /// The shard owning `p`: row-major cell index, clamped to the frame.
    pub fn shard_of(&self, p: &Point) -> usize {
        assert!(p.is_finite(), "cannot shard a non-finite point: {p:?}");
        let fx = (p.x - self.frame.min.x) / self.frame.width();
        let fy = (p.y - self.frame.min.y) / self.frame.height();
        let cx = ((fx * self.cols as f64) as isize).clamp(0, self.cols as isize - 1) as usize;
        let cy = ((fy * self.rows as f64) as isize).clamp(0, self.rows as isize - 1) as usize;
        cy * self.cols + cx
    }

    /// Whether a disc of radius `r` around `p` can only contain points
    /// mapping to `p`'s own cell — i.e. whether an entity at `p` with
    /// service radius `r` can never interact across a shard boundary.
    /// Sharded and unsharded runs agree exactly on inputs where this
    /// holds for every worker (the shard-disjointness precondition of
    /// the streaming pipeline).
    ///
    /// Equivalent to [`halo_shards`](Self::halo_shards) returning an
    /// empty set (and implemented as exactly that, so the two can never
    /// disagree): a cell's upper edge belongs to the *next* cell (so an
    /// interior disc must stay strictly below it), its lower edge
    /// belongs to the cell itself, and frame-edge cells absorb
    /// everything beyond the frame through clamping (so their outward
    /// side is unconstrained).
    pub fn is_interior(&self, p: &Point, r: f64) -> bool {
        self.halo_shards(p, r).is_empty()
    }

    /// Column index of coordinate `x`, clamped like
    /// [`shard_of`](Self::shard_of).
    fn col_of(&self, x: f64) -> usize {
        let fx = (x - self.frame.min.x) / self.frame.width();
        ((fx * self.cols as f64) as isize).clamp(0, self.cols as isize - 1) as usize
    }

    /// Row index of coordinate `y`, clamped like
    /// [`shard_of`](Self::shard_of).
    fn row_of(&self, y: f64) -> usize {
        let fy = (y - self.frame.min.y) / self.frame.height();
        ((fy * self.rows as f64) as isize).clamp(0, self.rows as isize - 1) as usize
    }

    /// Whether the closed disc `(p, r)` contains at least one point the
    /// partition maps to cell `(ncx, ncy)` — respecting the half-open
    /// cell semantics of [`shard_of`](Self::shard_of): a cell owns its
    /// lower edges, its upper edges belong to the next cell, and
    /// frame-edge cells own everything beyond the frame (clamping).
    fn disc_reaches_cell(&self, p: &Point, r: f64, ncx: usize, ncy: usize) -> bool {
        let cell_w = self.frame.width() / self.cols as f64;
        let cell_h = self.frame.height() / self.rows as f64;
        let lo_x = if ncx == 0 {
            f64::NEG_INFINITY
        } else {
            self.frame.min.x + ncx as f64 * cell_w
        };
        let hi_x = if ncx + 1 == self.cols {
            f64::INFINITY
        } else {
            self.frame.min.x + (ncx + 1) as f64 * cell_w
        };
        let lo_y = if ncy == 0 {
            f64::NEG_INFINITY
        } else {
            self.frame.min.y + ncy as f64 * cell_h
        };
        let hi_y = if ncy + 1 == self.rows {
            f64::INFINITY
        } else {
            self.frame.min.y + (ncy + 1) as f64 * cell_h
        };
        // Gap from p to the cell's owned region along each axis, and
        // whether the nearest point sits on an *excluded* upper edge
        // (which the next cell owns).
        let (dx, x_open) = if p.x < lo_x {
            (lo_x - p.x, false)
        } else if p.x >= hi_x {
            (p.x - hi_x, true)
        } else {
            (0.0, false)
        };
        let (dy, y_open) = if p.y < lo_y {
            (lo_y - p.y, false)
        } else if p.y >= hi_y {
            (p.y - hi_y, true)
        } else {
            (0.0, false)
        };
        let d2 = dx * dx + dy * dy;
        let r2 = r * r;
        // Strictly closer than r: the disc contains interior points of
        // the owned region. Exactly r away: only the single nearest
        // point touches, which counts only if the region owns it.
        d2 < r2 || (d2 == r2 && !x_open && !y_open)
    }

    /// The shards *other than `p`'s own* whose territory the closed
    /// disc of radius `r` around `p` reaches — the shards that must
    /// receive `p` as a halo member for cross-shard pairs to be seen.
    /// Ascending; empty exactly when [`is_interior`](Self::is_interior)
    /// holds.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpta_spatial::{Aabb, GridPartition, Point};
    ///
    /// let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 2);
    /// // A worker near the centre of cell 0 stays inside it…
    /// assert!(part.halo_shards(&Point::new(2.5, 2.5), 1.0).is_empty());
    /// // …but with a disc crossing x = 5 he reaches shard 1 too,
    /// let halo = part.halo_shards(&Point::new(4.5, 2.5), 1.0);
    /// assert_eq!(halo, vec![1]);
    /// // and at a cell corner one disc can reach three foreign shards.
    /// assert_eq!(part.halo_shards(&Point::new(4.9, 4.9), 1.0), vec![1, 2, 3]);
    /// ```
    pub fn halo_shards(&self, p: &Point, r: f64) -> Vec<usize> {
        assert!(r.is_finite() && r >= 0.0, "radius must be finite and >= 0");
        let home = self.shard_of(p);
        // One cell of slack around the disc's span: `disc_reaches_cell`
        // is the exact authority, the range only has to cover it.
        let cx0 = self.col_of(p.x - r).saturating_sub(1);
        let cx1 = (self.col_of(p.x + r) + 1).min(self.cols - 1);
        let cy0 = self.row_of(p.y - r).saturating_sub(1);
        let cy1 = (self.row_of(p.y + r) + 1).min(self.rows - 1);
        let mut out = Vec::new();
        for ncy in cy0..=cy1 {
            for ncx in cx0..=cx1 {
                let s = ncy * self.cols + ncx;
                if s != home && self.disc_reaches_cell(p, r, ncx, ncy) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// The full set of shards the closed disc `(p, r)` reaches — `p`'s
    /// own shard plus [`halo_shards`](Self::halo_shards), ascending.
    /// This is the shard membership of a worker in the streaming
    /// pipeline's halo mode.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpta_spatial::{Aabb, GridPartition, Point};
    ///
    /// let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 1);
    /// assert_eq!(part.reach_shards(&Point::new(2.5, 5.0), 1.0), vec![0]);
    /// assert_eq!(part.reach_shards(&Point::new(4.5, 5.0), 1.0), vec![0, 1]);
    /// ```
    pub fn reach_shards(&self, p: &Point, r: f64) -> Vec<usize> {
        let mut out = self.halo_shards(p, r);
        let home = self.shard_of(p);
        let pos = out.partition_point(|&s| s < home);
        out.insert(pos, home);
        out
    }

    /// Classifies a set of discs (worker service areas) against every
    /// shard: for each shard, the indices of the *foreign* discs whose
    /// reach crosses into it — the halo members that shard must import
    /// so no feasible cross-boundary pair is dropped. Indices ascend
    /// within each shard.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpta_spatial::{Aabb, Circle, GridPartition, Point};
    ///
    /// let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 1);
    /// let discs = [
    ///     Circle::new(Point::new(2.0, 5.0), 1.0), // interior to shard 0
    ///     Circle::new(Point::new(4.8, 5.0), 1.0), // shard 0, crosses into 1
    ///     Circle::new(Point::new(5.2, 5.0), 1.0), // shard 1, crosses into 0
    /// ];
    /// let halo = part.halo_members(&discs);
    /// assert_eq!(halo[0], vec![2]); // shard 0 imports disc 2
    /// assert_eq!(halo[1], vec![1]); // shard 1 imports disc 1
    /// ```
    pub fn halo_members(&self, discs: &[Circle]) -> Vec<Vec<usize>> {
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); self.n_shards()];
        for (i, d) in discs.iter().enumerate() {
            for s in self.halo_shards(&d.center, d.radius) {
                members[s].push(i);
            }
        }
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_force(points: &[Point], circle: &Circle) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| circle.contains(p))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = GridIndex::build(&[], 1.0);
        assert!(idx.is_empty());
        assert!(idx
            .query_circle(&Circle::new(Point::ORIGIN, 10.0))
            .is_empty());
        assert_eq!(idx.nearest(&Point::ORIGIN), None);
    }

    #[test]
    fn single_point() {
        let idx = GridIndex::build(&[Point::new(5.0, 5.0)], 1.0);
        assert_eq!(
            idx.query_circle(&Circle::new(Point::new(5.2, 5.0), 0.5)),
            vec![0]
        );
        assert!(idx
            .query_circle(&Circle::new(Point::new(9.0, 9.0), 0.5))
            .is_empty());
        assert_eq!(idx.nearest(&Point::ORIGIN), Some(0));
    }

    #[test]
    fn identical_points_all_returned() {
        let pts = vec![Point::new(1.0, 1.0); 7];
        let idx = GridIndex::build(&pts, 0.5);
        let res = idx.query_circle(&Circle::new(Point::new(1.0, 1.0), 0.1));
        assert_eq!(res, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        let mut rng = StdRng::seed_from_u64(42);
        let points: Vec<Point> = (0..2000)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let idx = GridIndex::build_for_radius(&points, 1.4);
        for _ in 0..50 {
            let c = Circle::new(
                Point::new(rng.gen_range(-5.0..105.0), rng.gen_range(-5.0..105.0)),
                rng.gen_range(0.1..8.0),
            );
            assert_eq!(idx.query_circle(&c), brute_force(&points, &c));
        }
    }

    #[test]
    fn query_outside_bounds_is_empty() {
        let points = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let idx = GridIndex::build(&points, 1.0);
        assert!(idx
            .query_circle(&Circle::new(Point::new(100.0, 100.0), 2.0))
            .is_empty());
    }

    #[test]
    fn reusing_buffer_clears_previous_results() {
        let points = vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        let idx = GridIndex::build(&points, 1.0);
        let mut buf = Vec::new();
        idx.query_circle_into(&Circle::new(Point::ORIGIN, 1.0), &mut buf);
        assert_eq!(buf, vec![0]);
        idx.query_circle_into(&Circle::new(Point::new(10.0, 10.0), 1.0), &mut buf);
        assert_eq!(buf, vec![1]);
    }

    #[test]
    fn nearest_breaks_ties_to_lower_index() {
        let points = vec![Point::new(1.0, 0.0), Point::new(-1.0, 0.0)];
        let idx = GridIndex::build(&points, 1.0);
        assert_eq!(idx.nearest(&Point::ORIGIN), Some(0));
    }

    #[test]
    fn partition_is_total_and_row_major() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 3);
        assert_eq!(part.n_shards(), 6);
        assert_eq!(part.cols(), 2);
        assert_eq!(part.rows(), 3);
        assert_eq!(part.shard_of(&Point::new(1.0, 1.0)), 0);
        assert_eq!(part.shard_of(&Point::new(6.0, 1.0)), 1);
        assert_eq!(part.shard_of(&Point::new(1.0, 4.0)), 2);
        assert_eq!(part.shard_of(&Point::new(9.9, 9.9)), 5);
        // Boundary and out-of-frame points clamp.
        assert_eq!(part.shard_of(&Point::new(10.0, 10.0)), 5);
        assert_eq!(part.shard_of(&Point::new(-3.0, 50.0)), 4);
    }

    #[test]
    fn partition_interior_test_respects_radius() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 2);
        // Cell (0,0) spans [0,5)×[0,5); its centre is interior for r < 2.5.
        assert!(part.is_interior(&Point::new(2.5, 2.5), 2.0));
        assert!(!part.is_interior(&Point::new(2.5, 2.5), 3.0));
        assert!(!part.is_interior(&Point::new(4.9, 2.5), 0.5));
        // A disc *touching* the upper edge reaches the boundary point,
        // which maps to the neighbouring cell (shard_of's half-open
        // cells) and is inside the closed service area — not interior.
        assert!(!part.is_interior(&Point::new(2.5, 2.5), 2.5));
        // Frame-edge cells absorb everything beyond the frame by
        // clamping, so their outward side is unconstrained…
        assert!(part.is_interior(&Point::new(9.0, 9.0), 3.0));
        // …but their inward side still is.
        assert!(!part.is_interior(&Point::new(9.0, 2.5), 5.0));
    }

    #[test]
    #[should_panic(expected = "cols > 0")]
    fn degenerate_partition_panics() {
        let _ = GridPartition::new(Aabb::from_extents(0.0, 0.0, 1.0, 1.0), 0, 1);
    }

    #[test]
    fn halo_shards_cover_boundary_crossings() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 2);
        // Interior disc: no halo.
        assert!(part.halo_shards(&Point::new(2.5, 2.5), 1.0).is_empty());
        // Crossing x = 5 only.
        assert_eq!(part.halo_shards(&Point::new(4.5, 2.5), 1.0), vec![1]);
        // Crossing y = 5 only, from above.
        assert_eq!(part.halo_shards(&Point::new(2.5, 5.4), 1.0), vec![0]);
        // Near the centre corner: reaches all three foreign cells.
        assert_eq!(part.halo_shards(&Point::new(4.8, 4.8), 1.0), vec![1, 2, 3]);
        // Near the corner but too far from the diagonal cell: the
        // axis-aligned neighbours only (corner (5,5) is √2·0.4 ≈ 0.57
        // away, beyond r = 0.5; the edges are 0.4 away).
        assert_eq!(part.halo_shards(&Point::new(4.6, 4.6), 0.5), vec![1, 2]);
        // Out-of-frame points clamp to border cells and can still halo.
        assert_eq!(part.halo_shards(&Point::new(-3.0, 2.0), 1.0), vec![]);
        assert_eq!(part.halo_shards(&Point::new(-0.5, 4.9), 1.0), vec![2]);
    }

    #[test]
    fn halo_edge_ownership_matches_shard_of() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 1);
        // Touching the upper edge exactly: the boundary point x = 5
        // belongs to shard 1, so the disc reaches it.
        assert_eq!(part.halo_shards(&Point::new(4.0, 5.0), 1.0), vec![1]);
        // Touching the lower edge exactly from the right cell: x = 5
        // belongs to the right cell itself, so nothing is crossed.
        assert!(part.halo_shards(&Point::new(6.0, 5.0), 1.0).is_empty());
        // A zero-radius disc on the boundary stays in its own shard.
        assert!(part.halo_shards(&Point::new(5.0, 5.0), 0.0).is_empty());
    }

    #[test]
    fn reach_shards_is_home_plus_halo_ascending() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 3, 1);
        let p = Point::new(3.4, 5.0); // shard 1 owns [10/3, 20/3)
        assert_eq!(part.shard_of(&p), 1);
        let reach = part.reach_shards(&p, 0.2);
        assert_eq!(reach, vec![0, 1]);
        assert!(reach.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(part.reach_shards(&Point::new(5.0, 5.0), 0.1), vec![1]);
    }

    #[test]
    fn halo_members_classifies_foreign_discs_per_shard() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 2);
        let discs = [
            Circle::new(Point::new(2.5, 2.5), 1.0), // interior, shard 0
            Circle::new(Point::new(4.8, 2.5), 1.0), // shard 0 → halo of 1
            Circle::new(Point::new(4.8, 4.8), 1.0), // shard 0 → halo of 1, 2, 3
            Circle::new(Point::new(7.5, 7.5), 8.0), // shard 3 → halo of all
        ];
        let halo = part.halo_members(&discs);
        assert_eq!(halo[0], vec![3]);
        assert_eq!(halo[1], vec![1, 2, 3]);
        assert_eq!(halo[2], vec![2, 3]);
        assert_eq!(halo[3], vec![2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn partition_shard_is_stable_and_in_range(
            x in -20.0f64..120.0, y in -20.0f64..120.0,
            cols in 1usize..8, rows in 1usize..8,
        ) {
            let part = GridPartition::new(
                Aabb::from_extents(0.0, 0.0, 100.0, 100.0), cols, rows);
            let s = part.shard_of(&Point::new(x, y));
            prop_assert!(s < part.n_shards());
            prop_assert_eq!(s, part.shard_of(&Point::new(x, y)));
        }

        #[test]
        fn reach_shards_cover_every_disc_point(
            x in -20.0f64..120.0, y in -20.0f64..120.0, r in 0.0f64..30.0,
            cols in 1usize..6, rows in 1usize..6,
        ) {
            let part = GridPartition::new(
                Aabb::from_extents(0.0, 0.0, 100.0, 100.0), cols, rows);
            let p = Point::new(x, y);
            let reach = part.reach_shards(&p, r);
            prop_assert!(reach.contains(&part.shard_of(&p)));
            prop_assert!(reach.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(part.is_interior(&p, r), reach.len() == 1);
            // Soundness: every point of the closed disc (sampled on
            // rings out to just inside the boundary — the exact-touch
            // cases are pinned by the deterministic unit tests, and a
            // float-rounded sample must not poke past the disc) maps
            // to a reported shard.
            for ring in 0..4 {
                let rr = r * (ring as f64 + 1.0) / 4.0 * (1.0 - 1e-9);
                for k in 0..16 {
                    let a = k as f64 * std::f64::consts::TAU / 16.0;
                    let q = Point::new(p.x + rr * a.cos(), p.y + rr * a.sin());
                    prop_assert!(
                        reach.contains(&part.shard_of(&q)),
                        "disc point {:?} maps to shard {} outside {:?}",
                        q, part.shard_of(&q), reach
                    );
                }
            }
        }

        #[test]
        fn grid_equals_brute_force(
            pts in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), 0..200),
            qx in -10.0f64..60.0, qy in -10.0f64..60.0, r in 0.01f64..10.0,
            cell in 0.1f64..5.0,
        ) {
            let points: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let idx = GridIndex::build(&points, cell);
            let c = Circle::new(Point::new(qx, qy), r);
            prop_assert_eq!(idx.query_circle(&c), brute_force(&points, &c));
        }
    }
}
