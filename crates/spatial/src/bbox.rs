//! Axis-aligned bounding boxes.

use crate::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box `[min.x, max.x] × [min.y, max.y]`.
///
/// Used to describe data-set frames (e.g. the paper's 100×100 synthetic
/// plane or the Chengdu UTM window) and as the coarse filter of the
/// [`GridIndex`](crate::GridIndex).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Aabb {
    /// Creates a box from two corners; panics if the box is inverted or
    /// non-finite, which would silently corrupt grid-cell arithmetic.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.is_finite() && max.is_finite(),
            "Aabb corners must be finite"
        );
        assert!(
            min.x <= max.x && min.y <= max.y,
            "Aabb min must be <= max (got min={min:?}, max={max:?})"
        );
        Aabb { min, max }
    }

    /// Convenience constructor from scalar extents.
    pub fn from_extents(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Aabb::new(Point::new(min_x, min_y), Point::new(max_x, max_y))
    }

    /// The smallest box containing every point in `points`.
    /// Returns `None` for an empty slice.
    pub fn bounding(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let mut min = *first;
        let mut max = *first;
        for p in &points[1..] {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Some(Aabb { min, max })
    }

    /// Box width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Box area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Whether `p` lies inside the box (inclusive of the boundary).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether the two boxes overlap (sharing a boundary counts).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Returns this box grown by `margin` on every side.
    pub fn inflate(&self, margin: f64) -> Aabb {
        assert!(margin >= 0.0, "inflate margin must be non-negative");
        Aabb::new(
            Point::new(self.min.x - margin, self.min.y - margin),
            Point::new(self.max.x + margin, self.max.y + margin),
        )
    }

    /// Clamps `p` to the closest point inside the box.
    #[inline]
    pub fn clamp(&self, p: &Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit() -> Aabb {
        Aabb::from_extents(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn contains_inclusive_boundary() {
        let b = unit();
        assert!(b.contains(&Point::new(0.0, 0.0)));
        assert!(b.contains(&Point::new(1.0, 1.0)));
        assert!(b.contains(&Point::new(0.5, 0.5)));
        assert!(!b.contains(&Point::new(1.0001, 0.5)));
        assert!(!b.contains(&Point::new(0.5, -0.0001)));
    }

    #[test]
    #[should_panic(expected = "min must be <=")]
    fn inverted_box_panics() {
        let _ = Aabb::from_extents(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn bounding_of_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(0.0, 7.0),
        ];
        let b = Aabb::bounding(&pts).unwrap();
        assert_eq!(b.min, Point::new(-2.0, 3.0));
        assert_eq!(b.max, Point::new(1.0, 7.0));
        assert!(Aabb::bounding(&[]).is_none());
    }

    #[test]
    fn geometry_accessors() {
        let b = Aabb::from_extents(1.0, 2.0, 4.0, 8.0);
        assert_eq!(b.width(), 3.0);
        assert_eq!(b.height(), 6.0);
        assert_eq!(b.area(), 18.0);
        assert_eq!(b.center(), Point::new(2.5, 5.0));
    }

    #[test]
    fn intersects_cases() {
        let a = unit();
        assert!(a.intersects(&Aabb::from_extents(0.5, 0.5, 2.0, 2.0)));
        assert!(a.intersects(&Aabb::from_extents(1.0, 0.0, 2.0, 1.0))); // touching edge
        assert!(!a.intersects(&Aabb::from_extents(1.5, 1.5, 2.0, 2.0)));
    }

    #[test]
    fn inflate_and_clamp() {
        let b = unit().inflate(0.5);
        assert_eq!(b.min, Point::new(-0.5, -0.5));
        assert_eq!(b.max, Point::new(1.5, 1.5));
        assert_eq!(unit().clamp(&Point::new(3.0, -1.0)), Point::new(1.0, 0.0));
        assert_eq!(unit().clamp(&Point::new(0.3, 0.4)), Point::new(0.3, 0.4));
    }

    proptest! {
        #[test]
        fn clamp_result_is_contained(px in -10.0f64..10.0, py in -10.0f64..10.0) {
            let b = unit();
            prop_assert!(b.contains(&b.clamp(&Point::new(px, py))));
        }

        #[test]
        fn bounding_contains_all(
            pts in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..50)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let b = Aabb::bounding(&pts).unwrap();
            for p in &pts {
                prop_assert!(b.contains(p));
            }
        }
    }
}
