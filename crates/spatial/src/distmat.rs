//! Dense task×worker distance matrices.

use crate::Point;

/// A dense `m × n` matrix of Euclidean distances, row `i` = task `t_i`,
/// column `j` = worker `w_j` — the `d_{i,j}` of the paper (Table I).
///
/// Per-batch instances are at most a few thousand on each side
/// (Sec. VII-B splits orders into ≤1000-task batches), so a dense dump
/// of all pair distances is both the fastest and the simplest layout for
/// the inner loops of PUCE/PGT/CEA.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    tasks: usize,
    workers: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pair distances between `task_locs` and `worker_locs`.
    pub fn compute(task_locs: &[Point], worker_locs: &[Point]) -> Self {
        let tasks = task_locs.len();
        let workers = worker_locs.len();
        let mut data = Vec::with_capacity(tasks * workers);
        for t in task_locs {
            for w in worker_locs {
                data.push(t.distance(w));
            }
        }
        DistanceMatrix {
            tasks,
            workers,
            data,
        }
    }

    /// Builds a matrix from raw row-major values (used by tests that
    /// reproduce the paper's hand-written distance tables, e.g. Table III).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let tasks = rows.len();
        let workers = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(tasks * workers);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                workers,
                "row {i} has {} entries, expected {workers}",
                row.len()
            );
            for &d in *row {
                assert!(
                    d.is_finite() && d >= 0.0,
                    "distances must be finite and >= 0"
                );
                data.push(d);
            }
        }
        DistanceMatrix {
            tasks,
            workers,
            data,
        }
    }

    /// Number of tasks (rows).
    #[inline]
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Number of workers (columns).
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Distance `d_{i,j}` from task `i` to worker `j`.
    #[inline]
    pub fn get(&self, task: usize, worker: usize) -> f64 {
        debug_assert!(task < self.tasks && worker < self.workers);
        self.data[task * self.workers + worker]
    }

    /// All distances for task `i` as a slice indexed by worker.
    #[inline]
    pub fn row(&self, task: usize) -> &[f64] {
        &self.data[task * self.workers..(task + 1) * self.workers]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_matches_pointwise() {
        let tasks = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let workers = vec![
            Point::new(0.0, 3.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 0.0),
        ];
        let m = DistanceMatrix::compute(&tasks, &workers);
        assert_eq!(m.tasks(), 2);
        assert_eq!(m.workers(), 3);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(0, 1), 4.0);
        assert_eq!(m.get(1, 2), 0.0);
        assert_eq!(m.row(0), &[3.0, 4.0, 1.0]);
    }

    #[test]
    fn from_rows_roundtrip() {
        // Table III of the paper.
        let m = DistanceMatrix::from_rows(&[
            &[12.2, 5.0, 9.43],
            &[3.61, 10.44, 18.25],
            &[17.12, 12.21, 7.28],
        ]);
        assert_eq!(m.get(0, 0), 12.2);
        assert_eq!(m.get(1, 0), 3.61);
        assert_eq!(m.get(2, 2), 7.28);
    }

    #[test]
    #[should_panic(expected = "row 1 has")]
    fn ragged_rows_panic() {
        let _ = DistanceMatrix::from_rows(&[&[1.0, 2.0], &[1.0]]);
    }

    #[test]
    fn empty_matrix() {
        let m = DistanceMatrix::compute(&[], &[]);
        assert_eq!(m.tasks(), 0);
        assert_eq!(m.workers(), 0);
    }
}
