//! Circular regions — worker service areas (Definition 2 of the paper).

use crate::{Aabb, Point};
use serde::{Deserialize, Serialize};

/// A disc `{p : |p - center| <= radius}`.
///
/// In the paper each worker `w_j` serves only tasks inside the circle
/// `A_j` centred at the worker's location with service radius `r_j`
/// ("worker range" in the experiments).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Disc centre.
    pub center: Point,
    /// Disc radius (km); must be non-negative and finite.
    pub radius: f64,
}

impl Circle {
    /// Creates a circle, validating the radius.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and >= 0, got {radius}"
        );
        Circle { center, radius }
    }

    /// Whether `p` lies inside the disc (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// The tight axis-aligned bounding box of the disc.
    #[inline]
    pub fn bounding_box(&self) -> Aabb {
        Aabb::new(
            Point::new(self.center.x - self.radius, self.center.y - self.radius),
            Point::new(self.center.x + self.radius, self.center.y + self.radius),
        )
    }

    /// Disc area, `π r²`.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Whether two discs overlap (boundary contact counts).
    #[inline]
    pub fn intersects(&self, other: &Circle) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_sq(&other.center) <= r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contains_boundary_and_interior() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        assert!(c.contains(&Point::new(3.0, 1.0))); // on boundary
        assert!(c.contains(&Point::new(1.0, 1.0))); // centre
        assert!(!c.contains(&Point::new(3.1, 1.0)));
    }

    #[test]
    fn zero_radius_contains_only_center() {
        let c = Circle::new(Point::new(0.5, 0.5), 0.0);
        assert!(c.contains(&Point::new(0.5, 0.5)));
        assert!(!c.contains(&Point::new(0.5, 0.5000001)));
    }

    #[test]
    #[should_panic(expected = "radius must be finite")]
    fn negative_radius_panics() {
        let _ = Circle::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn bounding_box_is_tight() {
        let c = Circle::new(Point::new(2.0, -1.0), 1.5);
        let b = c.bounding_box();
        assert_eq!(b.min, Point::new(0.5, -2.5));
        assert_eq!(b.max, Point::new(3.5, 0.5));
    }

    #[test]
    fn intersects_circles() {
        let a = Circle::new(Point::ORIGIN, 1.0);
        assert!(a.intersects(&Circle::new(Point::new(2.0, 0.0), 1.0))); // tangent
        assert!(!a.intersects(&Circle::new(Point::new(2.01, 0.0), 1.0)));
        assert!(a.intersects(&Circle::new(Point::new(0.1, 0.1), 0.2))); // nested
    }

    proptest! {
        #[test]
        fn contained_points_are_in_bbox(
            cx in -10.0f64..10.0, cy in -10.0f64..10.0, r in 0.0f64..5.0,
            px in -20.0f64..20.0, py in -20.0f64..20.0,
        ) {
            let c = Circle::new(Point::new(cx, cy), r);
            let p = Point::new(px, py);
            if c.contains(&p) {
                prop_assert!(c.bounding_box().contains(&p));
            }
        }
    }
}
