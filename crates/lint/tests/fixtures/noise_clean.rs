use dpta_dp::{BudgetLedger, SeededNoise};

pub fn charged_draw(seed: u64, ledger: &mut dyn BudgetLedger, id: u64, eps: f64) -> SeededNoise {
    let noise = SeededNoise::new(seed);
    ledger.charge(id, eps);
    noise
}
