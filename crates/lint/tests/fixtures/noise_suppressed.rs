use dpta_dp::SeededNoise;

pub fn relayed_draw(seed: u64) -> SeededNoise {
    // dpta-lint: allow(charged-noise-flow) -- fixture: source is handed to an engine that charges via Board::publish
    SeededNoise::new(seed)
}
