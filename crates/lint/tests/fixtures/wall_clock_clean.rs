/// Event-time only: the watermark is derived from the arrival stream,
/// never from the host clock.
pub fn window_cut_deadline(watermark_s: f64, width_s: f64) -> f64 {
    watermark_s + width_s
}
