use std::collections::HashMap;

pub fn histogram(ids: &[u32]) -> HashMap<u32, usize> {
    let mut h = HashMap::new();
    for &id in ids {
        *h.entry(id).or_insert(0) += 1;
    }
    h
}
