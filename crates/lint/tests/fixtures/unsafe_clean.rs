#![forbid(unsafe_code)]

pub fn peek(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}
