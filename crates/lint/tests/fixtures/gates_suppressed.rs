// dpta-lint: allow(lint-gate-presence) -- fixture: generated stub crate, headers injected by the build script
#![forbid(unsafe_code)]

pub fn stub() {}
