pub fn first(xs: &[u32]) -> u32 {
    // dpta-lint: allow(panic-hygiene) -- fixture: bound checked by the caller one frame up
    *xs.first().unwrap()
}
