pub fn first(xs: &[u32]) -> u32 {
    *xs.first().expect("caller guarantees a non-empty window")
}

pub fn second(xs: &[u32]) -> Option<u32> {
    xs.get(1).copied()
}
