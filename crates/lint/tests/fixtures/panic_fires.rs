use std::collections::BTreeMap;

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    *xs.get(1).expect("")
}

pub fn score(table: &BTreeMap<f64, u32>, key: f64) -> u32 {
    table[&key]
}
