pub fn window_cut_deadline() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn stamp_release() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
