// dpta-lint: allow(deterministic-containers) -- fixture: wrapping the std map behind a deterministic facade
use std::collections::HashMap as DeterministicBase;

pub struct Wrapped;
