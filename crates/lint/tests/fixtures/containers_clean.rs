use dpta_dp::intern::{FastMap, FastSet};
use std::collections::BTreeMap;

pub fn histogram(ids: &[u32]) -> FastMap<u32, usize> {
    let mut h = FastMap::default();
    let mut seen = FastSet::default();
    let mut ordered: BTreeMap<u32, usize> = BTreeMap::new();
    for &id in ids {
        seen.insert(id);
        *h.entry(id).or_insert(0) += 1;
        *ordered.entry(id).or_insert(0) += 1;
    }
    h
}
