pub fn peek(p: *const u32) -> u32 {
    // dpta-lint: allow(unsafe-policy) -- fixture: audited FFI shim, reviewed upstream
    unsafe { *p }
}
