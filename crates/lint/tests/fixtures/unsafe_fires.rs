pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}
