#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

/// Documented.
pub fn documented() {}
