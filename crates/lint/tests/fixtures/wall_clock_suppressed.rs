pub fn drive_span_for_report() -> std::time::Duration {
    // dpta-lint: allow(no-wall-clock) -- fixture: display-only timing, never feeds a decision
    let start = std::time::Instant::now();
    start.elapsed()
}
