use dpta_dp::SeededNoise;

pub fn uncharged_draw(seed: u64) -> SeededNoise {
    SeededNoise::new(seed)
}
