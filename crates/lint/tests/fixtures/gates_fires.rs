#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn undocumented() {}
