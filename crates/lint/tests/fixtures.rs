//! Fixture-based coverage for every lint rule: one fixture where the
//! rule fires (asserting file/line/rule), one where clean code passes,
//! and one where an `allow` annotation suppresses the finding with a
//! recorded reason — plus the self-check that `dpta-lint` runs clean
//! on the live workspace, which is what makes the CI gate honest.

use dpta_lint::rules::{self, lint_source, FileCtx, Role, RuleSet};
use dpta_lint::{lint_workspace, Finding};
use std::path::{Path, PathBuf};

fn ctx(rel_path: &str, crate_name: &str) -> FileCtx {
    FileCtx {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        is_crate_root: false,
        role: Role::Lib,
    }
}

/// Runs one rule (plus the always-on annotation meta-check) over a
/// fixture under the given context.
fn run_rule(rule: &str, ctx: &FileCtx, source: &str) -> Vec<Finding> {
    let mut rs = RuleSet::all();
    rs.only([rule.to_string()]);
    lint_source(ctx, source, &rs).findings
}

fn assert_fires(findings: &[Finding], rule: &str, path: &str, line: u32) {
    assert!(
        findings
            .iter()
            .any(|f| f.rule == rule && f.path == path && f.line == line),
        "expected {rule} at {path}:{line}, got {findings:?}"
    );
}

fn assert_suppressed(rule: &str, ctx: &FileCtx, source: &str) {
    let mut rs = RuleSet::all();
    rs.only([rule.to_string()]);
    let out = lint_source(ctx, source, &rs);
    assert!(
        out.findings.is_empty(),
        "{rule}: annotation failed to suppress: {:?}",
        out.findings
    );
    let used: Vec<_> = out.annotations.iter().filter(|a| a.used).collect();
    assert_eq!(
        used.len(),
        1,
        "{rule}: exactly one annotation should be used"
    );
    assert!(
        !used[0].reason.is_empty(),
        "{rule}: suppression must record a reason"
    );
}

#[test]
fn deterministic_containers_fires_clean_suppressed() {
    let c = ctx("crates/dp/src/fixture.rs", "dpta-dp");
    let f = run_rule(
        rules::DETERMINISTIC_CONTAINERS,
        &c,
        include_str!("fixtures/containers_fires.rs"),
    );
    assert_fires(&f, rules::DETERMINISTIC_CONTAINERS, &c.rel_path, 1);
    assert_fires(&f, rules::DETERMINISTIC_CONTAINERS, &c.rel_path, 3);
    assert_fires(&f, rules::DETERMINISTIC_CONTAINERS, &c.rel_path, 4);
    assert!(run_rule(
        rules::DETERMINISTIC_CONTAINERS,
        &c,
        include_str!("fixtures/containers_clean.rs")
    )
    .is_empty());
    assert_suppressed(
        rules::DETERMINISTIC_CONTAINERS,
        &c,
        include_str!("fixtures/containers_suppressed.rs"),
    );
}

#[test]
fn deterministic_containers_is_scoped_to_determinism_crates() {
    let outside = ctx("crates/experiments/src/fixture.rs", "dpta-experiments");
    assert!(run_rule(
        rules::DETERMINISTIC_CONTAINERS,
        &outside,
        include_str!("fixtures/containers_fires.rs")
    )
    .is_empty());
}

#[test]
fn no_wall_clock_fires_clean_suppressed() {
    let c = ctx("crates/stream/src/fixture.rs", "dpta-stream");
    let f = run_rule(
        rules::NO_WALL_CLOCK,
        &c,
        include_str!("fixtures/wall_clock_fires.rs"),
    );
    assert_fires(&f, rules::NO_WALL_CLOCK, &c.rel_path, 2);
    assert_fires(&f, rules::NO_WALL_CLOCK, &c.rel_path, 5);
    assert!(run_rule(
        rules::NO_WALL_CLOCK,
        &c,
        include_str!("fixtures/wall_clock_clean.rs")
    )
    .is_empty());
    assert_suppressed(
        rules::NO_WALL_CLOCK,
        &c,
        include_str!("fixtures/wall_clock_suppressed.rs"),
    );
}

#[test]
fn no_wall_clock_allowlists_the_experiment_display_paths() {
    for allowed in [
        "crates/experiments/src/runner.rs",
        "crates/experiments/src/stream_cmd.rs",
    ] {
        let c = ctx(allowed, "dpta-experiments");
        assert!(
            run_rule(
                rules::NO_WALL_CLOCK,
                &c,
                include_str!("fixtures/wall_clock_fires.rs")
            )
            .is_empty(),
            "{allowed} is on the display allowlist"
        );
    }
    let bench = FileCtx {
        rel_path: "crates/bench/src/fixture.rs".into(),
        crate_name: "dpta-bench".into(),
        is_crate_root: false,
        role: Role::Lib,
    };
    assert!(run_rule(
        rules::NO_WALL_CLOCK,
        &bench,
        include_str!("fixtures/wall_clock_fires.rs")
    )
    .is_empty());
}

#[test]
fn charged_noise_flow_fires_clean_suppressed() {
    let c = ctx("crates/stream/src/fixture.rs", "dpta-stream");
    let f = run_rule(
        rules::CHARGED_NOISE_FLOW,
        &c,
        include_str!("fixtures/noise_fires.rs"),
    );
    assert_fires(&f, rules::CHARGED_NOISE_FLOW, &c.rel_path, 4);
    assert!(run_rule(
        rules::CHARGED_NOISE_FLOW,
        &c,
        include_str!("fixtures/noise_clean.rs")
    )
    .is_empty());
    assert_suppressed(
        rules::CHARGED_NOISE_FLOW,
        &c,
        include_str!("fixtures/noise_suppressed.rs"),
    );
}

#[test]
fn charged_noise_flow_exempts_the_definition_modules() {
    let def = ctx("crates/dp/src/noise.rs", "dpta-dp");
    assert!(run_rule(
        rules::CHARGED_NOISE_FLOW,
        &def,
        include_str!("fixtures/noise_fires.rs")
    )
    .is_empty());
}

#[test]
fn panic_hygiene_fires_clean_suppressed() {
    let c = ctx("crates/core/src/fixture.rs", "dpta-core");
    let f = run_rule(
        rules::PANIC_HYGIENE,
        &c,
        include_str!("fixtures/panic_fires.rs"),
    );
    assert_fires(&f, rules::PANIC_HYGIENE, &c.rel_path, 4); // bare unwrap()
    assert_fires(&f, rules::PANIC_HYGIENE, &c.rel_path, 8); // expect("")
    assert_fires(&f, rules::PANIC_HYGIENE, &c.rel_path, 12); // float-keyed map index
    assert_eq!(f.len(), 3, "{f:?}");
    assert!(run_rule(
        rules::PANIC_HYGIENE,
        &c,
        include_str!("fixtures/panic_clean.rs")
    )
    .is_empty());
    assert_suppressed(
        rules::PANIC_HYGIENE,
        &c,
        include_str!("fixtures/panic_suppressed.rs"),
    );
}

#[test]
fn unsafe_policy_fires_clean_suppressed() {
    let mut root = ctx("crates/core/src/lib.rs", "dpta-core");
    root.is_crate_root = true;
    let f = run_rule(
        rules::UNSAFE_POLICY,
        &root,
        include_str!("fixtures/unsafe_fires.rs"),
    );
    assert_fires(&f, rules::UNSAFE_POLICY, &root.rel_path, 1); // missing forbid header
    assert_fires(&f, rules::UNSAFE_POLICY, &root.rel_path, 2); // unsafe token
    assert!(run_rule(
        rules::UNSAFE_POLICY,
        &root,
        include_str!("fixtures/unsafe_clean.rs")
    )
    .is_empty());
    let c = ctx("crates/core/src/fixture.rs", "dpta-core");
    assert_suppressed(
        rules::UNSAFE_POLICY,
        &c,
        include_str!("fixtures/unsafe_suppressed.rs"),
    );
}

#[test]
fn lint_gate_presence_fires_clean_suppressed() {
    let mut root = ctx("crates/workloads/src/lib.rs", "dpta-workloads");
    root.is_crate_root = true;
    let f = run_rule(
        rules::LINT_GATE_PRESENCE,
        &root,
        include_str!("fixtures/gates_fires.rs"),
    );
    // `warn(missing_docs)` counts as weakened: both headers missing.
    assert_eq!(f.len(), 2, "{f:?}");
    assert_fires(&f, rules::LINT_GATE_PRESENCE, &root.rel_path, 1);
    assert!(run_rule(
        rules::LINT_GATE_PRESENCE,
        &root,
        include_str!("fixtures/gates_clean.rs")
    )
    .is_empty());
    assert_suppressed(
        rules::LINT_GATE_PRESENCE,
        &root,
        include_str!("fixtures/gates_suppressed.rs"),
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn self_check_the_live_workspace_is_clean() {
    let out = lint_workspace(&workspace_root(), &RuleSet::all())
        .expect("workspace discovery succeeds from the repo checkout");
    assert!(
        out.findings.is_empty(),
        "dpta-lint must run clean on its own workspace:\n{}",
        dpta_lint::report::render_text(&out.findings)
    );
    assert!(out.files_scanned > 50, "suspiciously few files scanned");
    // Every suppression on record must still be load-bearing and
    // carry a reason — stale allows get cleaned up, not accumulated.
    for a in &out.annotations {
        assert!(a.used, "stale suppression at {}:{}", a.path, a.line);
        assert!(!a.reason.is_empty());
    }
}

#[test]
fn binary_exits_zero_on_the_live_workspace_and_nonzero_on_a_violation() {
    let bin = env!("CARGO_BIN_EXE_dpta-lint");
    let ok = std::process::Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(workspace_root())
        .output()
        .expect("dpta-lint binary runs");
    assert!(
        ok.status.success(),
        "expected exit 0 on the live workspace:\n{}{}",
        String::from_utf8_lossy(&ok.stdout),
        String::from_utf8_lossy(&ok.stderr)
    );

    // A scratch workspace with one firing crate must exit 1.
    let scratch = std::env::temp_dir().join(format!("dpta-lint-fixture-{}", std::process::id()));
    let src_dir = scratch.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("scratch dirs");
    std::fs::write(
        scratch.join("Cargo.toml"),
        "[workspace]\nmembers = [\n    \"crates/core\",\n]\n",
    )
    .expect("scratch root manifest");
    std::fs::write(
        scratch.join("crates/core/Cargo.toml"),
        "[package]\nname = \"dpta-core\"\n",
    )
    .expect("scratch member manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n#![deny(rustdoc::broken_intra_doc_links)]\n//! Scratch.\nuse std::collections::HashMap;\npub type T = HashMap<u32, u32>;\n",
    )
    .expect("scratch lib.rs");
    let bad = std::process::Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(&scratch)
        .output()
        .expect("dpta-lint binary runs on scratch workspace");
    std::fs::remove_dir_all(&scratch).ok();
    assert_eq!(bad.status.code(), Some(1), "findings must exit 1");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains("crates/core/src/lib.rs:5:23: deterministic-containers:"),
        "report should carry file:line:col and the rule id, got:\n{stdout}"
    );
}

#[test]
fn json_mode_reports_the_same_findings_machine_readably() {
    let bin = env!("CARGO_BIN_EXE_dpta-lint");
    let out = std::process::Command::new(bin)
        .args(["--workspace", "--json", "--root"])
        .arg(workspace_root())
        .output()
        .expect("dpta-lint --json runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"findings\": []"));
    assert!(stdout.contains("\"annotations\": ["));
    assert!(stdout.contains("\"used\": true"));
}
