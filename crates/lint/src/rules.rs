//! The rule catalog and the per-file scanner.
//!
//! Every rule matches token sequences produced by [`crate::lexer`], is
//! individually toggleable, and is suppressible line-by-line through an
//! audited `// dpta-lint: allow(<rule>) -- <reason>` annotation (the
//! annotation covers its own line and, when it stands alone, the next
//! source line). The catalog mirrors ARCHITECTURE.md's "Static analysis
//! & invariant enforcement" section; the why behind each rule lives
//! there.

use crate::lexer::{lex, Annotation, Tok, TokKind};
use std::collections::BTreeSet;

/// Rule 1: randomized-hash containers banned on deterministic paths.
pub const DETERMINISTIC_CONTAINERS: &str = "deterministic-containers";
/// Rule 2: wall-clock reads banned outside the display/bench allowlist.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule 3: noise sampling must sit in a module with a charge edge.
pub const CHARGED_NOISE_FLOW: &str = "charged-noise-flow";
/// Rule 4: bare `unwrap()` (and friends) banned in library code.
pub const PANIC_HYGIENE: &str = "panic-hygiene";
/// Rule 5: `#![forbid(unsafe_code)]` everywhere, no `unsafe` tokens.
pub const UNSAFE_POLICY: &str = "unsafe-policy";
/// Rule 6: the doc-lint headers must be present and unweakened.
pub const LINT_GATE_PRESENCE: &str = "lint-gate-presence";
/// Pseudo-rule for `dpta-lint:` comments that fail to parse — always a
/// finding, since a typoed suppression would otherwise silently do
/// nothing.
pub const MALFORMED_ANNOTATION: &str = "malformed-annotation";

/// Every rule id, in report order.
pub const ALL_RULES: &[&str] = &[
    DETERMINISTIC_CONTAINERS,
    NO_WALL_CLOCK,
    CHARGED_NOISE_FLOW,
    PANIC_HYGIENE,
    UNSAFE_POLICY,
    LINT_GATE_PRESENCE,
    MALFORMED_ANNOTATION,
];

/// Crates whose library code must stay bit-for-bit deterministic
/// (rules 1 and 3 scope).
const DETERMINISM_CRATES: &[&str] = &[
    "dpta-core",
    "dpta-dp",
    "dpta-matching",
    "dpta-spatial",
    "dpta-stream",
];

/// Crates whose library code must not panic on invariant slips
/// (rule 4 scope).
const PANIC_CRATES: &[&str] = &["dpta-core", "dpta-dp", "dpta-stream"];

/// Files allowed to read the wall clock: display-only timing in the
/// experiment harness. The bench crate is exempt wholesale (timing is
/// its job); everything else needs an inline annotation.
const WALL_CLOCK_ALLOW_PATHS: &[&str] = &[
    "crates/experiments/src/runner.rs",
    "crates/experiments/src/stream_cmd.rs",
];

/// The modules that *define* the sampling primitives; rule 3 exempts
/// them (a definition is not an uncharged release).
const NOISE_DEF_PATHS: &[&str] = &[
    "crates/dp/src/laplace.rs",
    "crates/dp/src/geo.rs",
    "crates/dp/src/noise.rs",
];

/// Identifiers that perform a noise draw when called.
const SAMPLING_IDENTS: &[&str] = &["sample_from_uniform", "sample_from_uniforms"];

/// Method/path names that constitute a charge edge: the
/// `BudgetLedger` surface (`charge`/`charge_at`/`reserve`) and the
/// `Board` surface (`publish`/`charge_location`), which charges the
/// per-worker `PrivacyLedger` on every release.
const CHARGE_IDENTS: &[&str] = &[
    "charge",
    "charge_at",
    "reserve",
    "publish",
    "charge_location",
];

/// Whether a file is library code or a binary entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Part of a `lib` target.
    Lib,
    /// A `main.rs` / `src/bin/*.rs` entry point.
    Bin,
}

/// Everything the rules need to know about the file being scanned.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Cargo package name (`dpta-core`, ...).
    pub crate_name: String,
    /// Whether this file is the crate root (`lib.rs`), where the
    /// header rules (5 and 6) look for inner attributes.
    pub is_crate_root: bool,
    /// Library or binary code.
    pub role: Role,
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id from [`ALL_RULES`].
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// An `allow` annotation as it appears in the audit: where, what it
/// suppresses, why, and whether it actually matched a finding.
#[derive(Debug, Clone)]
pub struct AnnotationRecord {
    /// Path relative to the workspace root.
    pub path: String,
    /// Line of the comment.
    pub line: u32,
    /// Rules it suppresses.
    pub rules: Vec<String>,
    /// The recorded justification.
    pub reason: String,
    /// Whether it suppressed at least one finding in this run — an
    /// unused annotation is stale and shows up as such in the audit.
    pub used: bool,
}

/// Which rules run. Defaults to all of them.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    disabled: BTreeSet<String>,
    only: Option<BTreeSet<String>>,
}

impl RuleSet {
    /// All rules enabled.
    pub fn all() -> Self {
        Self::default()
    }

    /// Disables `rule`.
    pub fn disable(&mut self, rule: &str) {
        self.disabled.insert(rule.to_string());
    }

    /// Restricts the run to exactly `rules` (plus
    /// [`MALFORMED_ANNOTATION`], which cannot be opted out of by
    /// narrowing — a broken suppression is a meta-error).
    pub fn only<I: IntoIterator<Item = String>>(&mut self, rules: I) {
        self.only = Some(rules.into_iter().collect());
    }

    /// Whether `rule` runs.
    pub fn enabled(&self, rule: &str) -> bool {
        if self.disabled.contains(rule) {
            return false;
        }
        match &self.only {
            Some(set) => rule == MALFORMED_ANNOTATION || set.contains(rule),
            None => true,
        }
    }
}

/// Whether `name` is a rule id this binary knows.
pub fn is_known_rule(name: &str) -> bool {
    ALL_RULES.contains(&name)
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Unsuppressed findings.
    pub findings: Vec<Finding>,
    /// Every annotation seen, with its usage flag.
    pub annotations: Vec<AnnotationRecord>,
}

/// Scans one file's source under `ctx`, returning surviving findings
/// and the annotation audit entries.
pub fn lint_source(ctx: &FileCtx, source: &str, rules: &RuleSet) -> FileOutcome {
    let lexed = lex(source);
    let toks = &lexed.toks;
    let mask = test_mask(toks);
    let mut raw: Vec<Finding> = Vec::new();

    if rules.enabled(MALFORMED_ANNOTATION) {
        for m in &lexed.malformed {
            raw.push(finding(
                ctx,
                m.line,
                m.col,
                MALFORMED_ANNOTATION,
                format!("unparseable dpta-lint annotation: {}", m.message),
            ));
        }
        for a in &lexed.annotations {
            for r in &a.rules {
                if !is_known_rule(r) {
                    raw.push(finding(
                        ctx,
                        a.line,
                        1,
                        MALFORMED_ANNOTATION,
                        format!("annotation allows unknown rule `{r}`"),
                    ));
                }
            }
        }
    }

    if rules.enabled(DETERMINISTIC_CONTAINERS) && applies_containers(ctx) {
        scan_containers(ctx, toks, &mask, &mut raw);
    }
    if rules.enabled(NO_WALL_CLOCK) && applies_wall_clock(ctx) {
        scan_wall_clock(ctx, toks, &mask, &mut raw);
    }
    if rules.enabled(CHARGED_NOISE_FLOW) && applies_noise_flow(ctx) {
        scan_noise_flow(ctx, toks, &mask, &mut raw);
    }
    if rules.enabled(PANIC_HYGIENE) && applies_panic(ctx) {
        scan_panic(ctx, toks, &mask, &mut raw);
    }
    if rules.enabled(UNSAFE_POLICY) {
        scan_unsafe(ctx, toks, &mut raw);
    }
    if rules.enabled(LINT_GATE_PRESENCE) && ctx.is_crate_root {
        scan_lint_gates(ctx, toks, &mut raw);
    }

    apply_suppressions(ctx, raw, &lexed.annotations, toks)
}

fn finding(ctx: &FileCtx, line: u32, col: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        path: ctx.rel_path.clone(),
        line,
        col,
        rule,
        message,
    }
}

fn applies_containers(ctx: &FileCtx) -> bool {
    ctx.role == Role::Lib && DETERMINISM_CRATES.contains(&ctx.crate_name.as_str())
}

fn applies_wall_clock(ctx: &FileCtx) -> bool {
    ctx.crate_name != "dpta-bench" && !WALL_CLOCK_ALLOW_PATHS.contains(&ctx.rel_path.as_str())
}

fn applies_noise_flow(ctx: &FileCtx) -> bool {
    ctx.role == Role::Lib
        && DETERMINISM_CRATES.contains(&ctx.crate_name.as_str())
        && !NOISE_DEF_PATHS.contains(&ctx.rel_path.as_str())
}

fn applies_panic(ctx: &FileCtx) -> bool {
    ctx.role == Role::Lib && PANIC_CRATES.contains(&ctx.crate_name.as_str())
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// Marks every token inside a `#[cfg(test)]` (or `#[test]`) item so
/// the code rules skip test code. The extent of the item is the
/// brace-balanced block after the attribute(s), or up to the `;` for
/// block-less items such as `#[cfg(test)] use ...;`.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(is_punct(&toks[i], "#") && i + 1 < toks.len() && is_punct(&toks[i + 1], "[")) {
            i += 1;
            continue;
        }
        let (attr_end, idents) = attr_extent(toks, i + 1);
        let is_test_attr = match idents.first().map(String::as_str) {
            Some("test") => true,
            Some("cfg") => idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not"),
            _ => false,
        };
        if !is_test_attr {
            i = attr_end;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut k = attr_end;
        while k + 1 < toks.len() && is_punct(&toks[k], "#") && is_punct(&toks[k + 1], "[") {
            k = attr_extent(toks, k + 1).0;
        }
        // Mask through the item's block (or to its `;`).
        let mut depth = 0usize;
        let mut end = k;
        while end < toks.len() {
            if is_punct(&toks[end], "{") {
                depth += 1;
            } else if is_punct(&toks[end], "}") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end += 1;
                    break;
                }
            } else if is_punct(&toks[end], ";") && depth == 0 {
                end += 1;
                break;
            }
            end += 1;
        }
        for m in mask.iter_mut().take(end.min(toks.len())).skip(i) {
            *m = true;
        }
        i = end;
    }
    mask
}

/// Given `open` pointing at the `[` of an attribute, returns the index
/// just past the matching `]` plus every identifier seen inside.
fn attr_extent(toks: &[Tok], open: usize) -> (usize, Vec<String>) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if is_punct(t, "[") {
            depth += 1;
        } else if is_punct(t, "]") {
            depth -= 1;
            if depth == 0 {
                return (j + 1, idents);
            }
        } else if t.kind == TokKind::Ident {
            idents.push(t.text.clone());
        }
        j += 1;
    }
    (j, idents)
}

fn scan_containers(ctx: &FileCtx, toks: &[Tok], mask: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if is_ident(t, "HashMap") || is_ident(t, "HashSet") {
            out.push(finding(
                ctx,
                t.line,
                t.col,
                DETERMINISTIC_CONTAINERS,
                format!(
                    "`{}` (randomized SipHash) is banned on deterministic paths; \
                     use `dpta_dp::intern::FastMap`/`FastSet` or a BTree container",
                    t.text
                ),
            ));
        }
    }
}

fn scan_wall_clock(ctx: &FileCtx, toks: &[Tok], mask: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if is_ident(t, "SystemTime") {
            out.push(finding(
                ctx,
                t.line,
                t.col,
                NO_WALL_CLOCK,
                "`SystemTime` is a wall-clock read; deterministic paths must derive \
                 time from the event stream"
                    .to_string(),
            ));
        } else if is_ident(t, "Instant")
            && matches!(toks.get(i + 1), Some(n) if is_punct(n, ":"))
            && matches!(toks.get(i + 2), Some(n) if is_punct(n, ":"))
            && matches!(toks.get(i + 3), Some(n) if is_ident(n, "now"))
        {
            out.push(finding(
                ctx,
                t.line,
                t.col,
                NO_WALL_CLOCK,
                "`Instant::now()` outside the bench/display allowlist; replay \
                 determinism forbids wall-clock reads on decision paths"
                    .to_string(),
            ));
        }
    }
}

fn scan_noise_flow(ctx: &FileCtx, toks: &[Tok], mask: &[bool], out: &mut Vec<Finding>) {
    let mut has_charge_edge = false;
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if CHARGE_IDENTS.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(n) if is_punct(n, "("))
            && i > 0
            && (is_punct(&toks[i - 1], ".") || is_punct(&toks[i - 1], ":"))
        {
            has_charge_edge = true;
            break;
        }
    }
    if has_charge_edge {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let sampled = (t.kind == TokKind::Ident
            && SAMPLING_IDENTS.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(n) if is_punct(n, "(")))
            || (is_ident(t, "SeededNoise")
                && matches!(toks.get(i + 1), Some(n) if is_punct(n, ":"))
                && matches!(toks.get(i + 2), Some(n) if is_punct(n, ":"))
                && matches!(toks.get(i + 3), Some(n) if is_ident(n, "new")));
        if sampled {
            out.push(finding(
                ctx,
                t.line,
                t.col,
                CHARGED_NOISE_FLOW,
                "noise sampling in a module with no visible charge edge \
                 (`charge`/`charge_at`/`reserve` on a BudgetLedger, or \
                 `publish`/`charge_location` on a Board); route the release \
                 through the charging surface or annotate where accounting happens"
                    .to_string(),
            ));
        }
    }
}

fn scan_panic(ctx: &FileCtx, toks: &[Tok], mask: &[bool], out: &mut Vec<Finding>) {
    // `name[` indexing on maps declared with a float key in this file.
    let float_maps = float_keyed_maps(toks);
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if is_punct(t, ".")
            && matches!(toks.get(i + 1), Some(n) if is_ident(n, "unwrap"))
            && matches!(toks.get(i + 2), Some(n) if is_punct(n, "("))
            && matches!(toks.get(i + 3), Some(n) if is_punct(n, ")"))
        {
            let u = &toks[i + 1];
            out.push(finding(
                ctx,
                u.line,
                u.col,
                PANIC_HYGIENE,
                "bare `unwrap()` in library code; use `expect(\"<invariant>\")` to \
                 document why the value must exist, or handle the miss"
                    .to_string(),
            ));
        } else if is_punct(t, ".")
            && matches!(toks.get(i + 1), Some(n) if is_ident(n, "expect"))
            && matches!(toks.get(i + 2), Some(n) if is_punct(n, "("))
        {
            let ok = matches!(toks.get(i + 3), Some(n) if n.kind == TokKind::Str { empty: false });
            if !ok {
                let e = &toks[i + 1];
                out.push(finding(
                    ctx,
                    e.line,
                    e.col,
                    PANIC_HYGIENE,
                    "`expect` must document its invariant with a non-empty string \
                     literal message"
                        .to_string(),
                ));
            }
        } else if t.kind == TokKind::Ident
            && float_maps.contains(&t.text)
            && matches!(toks.get(i + 1), Some(n) if is_punct(n, "["))
        {
            out.push(finding(
                ctx,
                t.line,
                t.col,
                PANIC_HYGIENE,
                format!(
                    "indexing `{}[..]` on a float-keyed map can panic on \
                     representation mismatches; use `.get()` and handle the miss",
                    t.text
                ),
            ));
        }
    }
}

/// Names bound in this file to a map type whose key parameter is a
/// float (`HashMap<f64, _>`, `BTreeMap<(f32, u32)>`, ...), found by a
/// shallow backward scan from the map type to its `name:` binding.
fn float_keyed_maps(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        let is_map = ["HashMap", "BTreeMap", "FastMap"]
            .iter()
            .any(|m| is_ident(t, m));
        if !is_map || !matches!(toks.get(i + 1), Some(n) if is_punct(n, "<")) {
            continue;
        }
        // Key type: the tokens up to the first `,` at angle depth 1.
        let mut depth = 1i32;
        let mut j = i + 2;
        let mut float_key = false;
        while j < toks.len() && depth > 0 {
            let n = &toks[j];
            if is_punct(n, "<") {
                depth += 1;
            } else if is_punct(n, ">") {
                depth -= 1;
            } else if is_punct(n, ",") && depth == 1 {
                break;
            } else if depth == 1 && (is_ident(n, "f64") || is_ident(n, "f32")) {
                float_key = true;
            } else if is_ident(n, "f64") || is_ident(n, "f32") {
                // Inside a tuple key `(f64, u32)` the parens don't
                // change angle depth; still a float key.
                float_key = true;
            }
            j += 1;
        }
        if !float_key {
            continue;
        }
        // Walk back over the type path (`std :: collections :: HashMap`)
        // to the `name :` binding, if any.
        let mut k = i;
        while k >= 2 && is_punct(&toks[k - 1], ":") && is_punct(&toks[k - 2], ":") {
            if k >= 3 && toks[k - 3].kind == TokKind::Ident {
                k -= 3;
            } else {
                break;
            }
        }
        // Skip reference sigils and mutability between the binding's
        // `:` and the type path.
        while k >= 1
            && (is_punct(&toks[k - 1], "&")
                || is_ident(&toks[k - 1], "mut")
                || toks[k - 1].kind == TokKind::Lifetime)
        {
            k -= 1;
        }
        if k >= 2
            && is_punct(&toks[k - 1], ":")
            && !is_punct(&toks[k - 2], ":")
            && toks[k - 2].kind == TokKind::Ident
        {
            names.insert(toks[k - 2].text.clone());
        }
    }
    names
}

fn scan_unsafe(ctx: &FileCtx, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if is_ident(t, "unsafe") {
            out.push(finding(
                ctx,
                t.line,
                t.col,
                UNSAFE_POLICY,
                "`unsafe` is banned workspace-wide; every crate carries \
                 `#![forbid(unsafe_code)]`"
                    .to_string(),
            ));
        }
    }
    if ctx.is_crate_root && !has_inner_attr(toks, "forbid", &["unsafe_code"]) {
        out.push(finding(
            ctx,
            1,
            1,
            UNSAFE_POLICY,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}

fn scan_lint_gates(ctx: &FileCtx, toks: &[Tok], out: &mut Vec<Finding>) {
    if !has_inner_attr(toks, "deny", &["missing_docs"]) {
        out.push(finding(
            ctx,
            1,
            1,
            LINT_GATE_PRESENCE,
            "crate root is missing (or has weakened) `#![deny(missing_docs)]`".to_string(),
        ));
    }
    if !has_inner_attr(toks, "deny", &["rustdoc", "broken_intra_doc_links"]) {
        out.push(finding(
            ctx,
            1,
            1,
            LINT_GATE_PRESENCE,
            "crate root is missing (or has weakened) \
             `#![deny(rustdoc::broken_intra_doc_links)]`"
                .to_string(),
        ));
    }
}

/// Looks for the inner attribute `#![<verb>(<path segments>)]`,
/// tolerating `::` between segments.
fn has_inner_attr(toks: &[Tok], verb: &str, segments: &[&str]) -> bool {
    'outer: for i in 0..toks.len() {
        if !(is_punct(&toks[i], "#")
            && matches!(toks.get(i + 1), Some(n) if is_punct(n, "!"))
            && matches!(toks.get(i + 2), Some(n) if is_punct(n, "["))
            && matches!(toks.get(i + 3), Some(n) if is_ident(n, verb))
            && matches!(toks.get(i + 4), Some(n) if is_punct(n, "(")))
        {
            continue;
        }
        let mut j = i + 5;
        for (s, seg) in segments.iter().enumerate() {
            if s > 0 {
                if !(matches!(toks.get(j), Some(n) if is_punct(n, ":"))
                    && matches!(toks.get(j + 1), Some(n) if is_punct(n, ":")))
                {
                    continue 'outer;
                }
                j += 2;
            }
            if !matches!(toks.get(j), Some(n) if is_ident(n, seg)) {
                continue 'outer;
            }
            j += 1;
        }
        if matches!(toks.get(j), Some(n) if is_punct(n, ")")) {
            return true;
        }
    }
    false
}

/// Applies line-scoped suppressions and assembles the audit records.
fn apply_suppressions(
    ctx: &FileCtx,
    raw: Vec<Finding>,
    annotations: &[Annotation],
    toks: &[Tok],
) -> FileOutcome {
    // An annotation covers its own line plus — when no token shares its
    // line (it stands alone) — the next line holding any token.
    let covered: Vec<(u32, Vec<u32>)> = annotations
        .iter()
        .map(|a| {
            let mut lines = vec![a.line];
            let trailing = toks.iter().any(|t| t.line == a.line);
            if !trailing {
                if let Some(next) = toks.iter().map(|t| t.line).filter(|&l| l > a.line).min() {
                    lines.push(next);
                }
            }
            (a.line, lines)
        })
        .collect();

    let mut used = vec![false; annotations.len()];
    let mut findings = Vec::new();
    'next_finding: for f in raw {
        if f.rule != MALFORMED_ANNOTATION {
            for (k, a) in annotations.iter().enumerate() {
                if a.rules.iter().any(|r| r == f.rule) && covered[k].1.contains(&f.line) {
                    used[k] = true;
                    continue 'next_finding;
                }
            }
        }
        findings.push(f);
    }

    let records = annotations
        .iter()
        .zip(used)
        .map(|(a, used)| AnnotationRecord {
            path: ctx.rel_path.clone(),
            line: a.line,
            rules: a.rules.clone(),
            reason: a.reason.clone(),
            used,
        })
        .collect();

    FileOutcome {
        findings,
        annotations: records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, krate: &str) -> FileCtx {
        FileCtx {
            rel_path: path.to_string(),
            crate_name: krate.to_string(),
            is_crate_root: false,
            role: Role::Lib,
        }
    }

    fn run(ctx: &FileCtx, src: &str) -> Vec<Finding> {
        lint_source(ctx, src, &RuleSet::all()).findings
    }

    #[test]
    fn hashmap_fires_only_in_determinism_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(run(&ctx("crates/core/src/x.rs", "dpta-core"), src).len(), 1);
        assert!(run(&ctx("crates/experiments/src/x.rs", "dpta-experiments"), src).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _: HashMap<u32, u32> = HashMap::new(); }\n}\n";
        assert!(run(&ctx("crates/dp/src/x.rs", "dpta-dp"), src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src =
            "#[cfg(not(test))]\nfn live() { let t = std::time::Instant::now(); let _ = t; }\n";
        let f = run(&ctx("crates/stream/src/x.rs", "dpta-stream"), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, NO_WALL_CLOCK);
    }

    #[test]
    fn standalone_annotation_covers_next_line_and_is_marked_used() {
        let src = "// dpta-lint: allow(deterministic-containers) -- fixture justification\nuse std::collections::HashMap;\n";
        let out = lint_source(&ctx("crates/dp/src/x.rs", "dpta-dp"), src, &RuleSet::all());
        assert!(out.findings.is_empty());
        assert!(out.annotations[0].used);
    }

    #[test]
    fn trailing_annotation_covers_its_own_line_only() {
        let src = "use std::collections::HashMap; // dpta-lint: allow(deterministic-containers) -- fixture\nuse std::collections::HashSet;\n";
        let out = lint_source(&ctx("crates/dp/src/x.rs", "dpta-dp"), src, &RuleSet::all());
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].line, 2);
    }

    #[test]
    fn annotation_for_wrong_rule_does_not_suppress() {
        let src =
            "// dpta-lint: allow(no-wall-clock) -- wrong rule\nuse std::collections::HashMap;\n";
        let out = lint_source(&ctx("crates/dp/src/x.rs", "dpta-dp"), src, &RuleSet::all());
        assert_eq!(out.findings.len(), 1);
        assert!(!out.annotations[0].used);
    }

    #[test]
    fn disabled_rule_does_not_fire() {
        let mut rs = RuleSet::all();
        rs.disable(DETERMINISTIC_CONTAINERS);
        let out = lint_source(
            &ctx("crates/dp/src/x.rs", "dpta-dp"),
            "use std::collections::HashMap;\n",
            &rs,
        );
        assert!(out.findings.is_empty());
    }

    #[test]
    fn noise_flow_needs_sampling_and_no_charge_edge() {
        let with_charge = "fn f(l: &mut L) { let n = SeededNoise::new(7); l.charge(1, 0.5); }\n";
        assert!(run(&ctx("crates/stream/src/x.rs", "dpta-stream"), with_charge).is_empty());
        let without = "fn f() { let n = SeededNoise::new(7); }\n";
        let f = run(&ctx("crates/stream/src/x.rs", "dpta-stream"), without);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, CHARGED_NOISE_FLOW);
    }

    #[test]
    fn noise_definition_modules_are_exempt() {
        let src = "fn f() { let n = SeededNoise::new(7); }\n";
        assert!(run(&ctx("crates/dp/src/noise.rs", "dpta-dp"), src).is_empty());
    }

    #[test]
    fn panic_hygiene_unwrap_and_undocumented_expect() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Option<u32>) -> u32 { x.expect(\"\") }\nfn h(x: Option<u32>) -> u32 { x.expect(\"slot registered at push\") }\n";
        let f = run(&ctx("crates/core/src/x.rs", "dpta-core"), src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn float_keyed_map_indexing_fires() {
        let src = "fn f(scores: &std::collections::BTreeMap<f64, u32>) -> u32 { scores[&0.5] }\n";
        let f: Vec<_> = run(&ctx("crates/core/src/x.rs", "dpta-core"), src)
            .into_iter()
            .filter(|f| f.rule == PANIC_HYGIENE)
            .collect();
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn unsafe_token_fires_everywhere() {
        let src = "fn f() { let p = unsafe { *std::ptr::null::<u32>() }; }\n";
        let f = run(&ctx("crates/experiments/src/x.rs", "dpta-experiments"), src);
        assert!(f.iter().any(|f| f.rule == UNSAFE_POLICY));
    }

    #[test]
    fn crate_root_header_rules() {
        let mut c = ctx("crates/core/src/lib.rs", "dpta-core");
        c.is_crate_root = true;
        let bare = "pub fn f() {}\n";
        let f = run(&c, bare);
        assert!(f.iter().any(|f| f.rule == UNSAFE_POLICY));
        assert_eq!(f.iter().filter(|f| f.rule == LINT_GATE_PRESENCE).count(), 2);
        let full = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n#![deny(rustdoc::broken_intra_doc_links)]\npub fn f() {}\n";
        assert!(run(&c, full).is_empty());
        // Weakening deny -> warn re-fires the gate rule.
        let weak = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n#![deny(rustdoc::broken_intra_doc_links)]\npub fn f() {}\n";
        assert_eq!(
            run(&c, weak)
                .iter()
                .filter(|f| f.rule == LINT_GATE_PRESENCE)
                .count(),
            1
        );
    }

    #[test]
    fn unknown_rule_in_annotation_is_a_finding() {
        let src = "// dpta-lint: allow(no-such-rule) -- why\nfn f() {}\n";
        let f = run(&ctx("crates/core/src/x.rs", "dpta-core"), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, MALFORMED_ANNOTATION);
    }
}
