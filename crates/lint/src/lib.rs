//! `dpta-lint` — a workspace static analyzer enforcing the determinism
//! and privacy-flow invariants that the proptests can only sample.
//!
//! Every guarantee the repro ships — bit-for-bit flat/sharded
//! agreement, exactly-once budget charging, byte-identical snapshot
//! replay — rests on *source-level* invariants: no randomized-hash
//! containers on deterministic paths, no wall-clock reads on decision
//! paths, no noise release that bypasses the charging surface. Dynamic
//! tests sample those invariants; this crate checks them statically on
//! every push. The rule catalog (see [`rules`]) mirrors
//! ARCHITECTURE.md's "Static analysis & invariant enforcement" section:
//!
//! 1. `deterministic-containers` — `std::collections::HashMap`/`HashSet`
//!    banned in core/dp/matching/spatial/stream;
//! 2. `no-wall-clock` — `Instant::now`/`SystemTime` banned outside the
//!    bench crate and the experiments display paths;
//! 3. `charged-noise-flow` — noise-sampling calls only in modules with
//!    a visible charge edge;
//! 4. `panic-hygiene` — bare `unwrap()` and undocumented `expect`
//!    banned in core/dp/stream library code;
//! 5. `unsafe-policy` — `#![forbid(unsafe_code)]` on every crate root,
//!    no `unsafe` tokens anywhere;
//! 6. `lint-gate-presence` — the `#![deny(missing_docs)]` /
//!    `#![deny(rustdoc::broken_intra_doc_links)]` headers present and
//!    unweakened on every crate root.
//!
//! Suppressions are line-scoped, audited, and must carry a reason:
//!
//! ```text
//! // dpta-lint: allow(no-wall-clock) -- drive_time is observability-only
//! ```
//!
//! The binary (`cargo run -p dpta-lint --release -- --workspace`)
//! exits non-zero on any finding; `--json` emits a machine-readable
//! report and `--annotations` prints the audit of every suppression
//! with its recorded reason.
//!
//! The analyzer is deliberately dependency-free and self-contained
//! (hand-rolled lexer, lightweight manifest walker): it must stay
//! buildable and trustworthy independently of the code it audits.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use rules::{AnnotationRecord, FileCtx, Finding, Role, RuleSet, ALL_RULES};

use std::fs;
use std::path::Path;

/// The result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceOutcome {
    /// Surviving findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Every suppression annotation in the workspace, sorted by
    /// (path, line), each flagged used/unused.
    pub annotations: Vec<AnnotationRecord>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Lints every non-vendored workspace crate under `root`.
pub fn lint_workspace(root: &Path, ruleset: &RuleSet) -> Result<WorkspaceOutcome, String> {
    let files = workspace::collect_files(root)?;
    let mut out = WorkspaceOutcome {
        files_scanned: files.len(),
        ..Default::default()
    };
    for file in &files {
        let source = fs::read_to_string(&file.abs_path)
            .map_err(|e| format!("cannot read {}: {e}", file.abs_path.display()))?;
        let mut fo = rules::lint_source(&file.ctx, &source, ruleset);
        out.findings.append(&mut fo.findings);
        out.annotations.append(&mut fo.annotations);
    }
    out.findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    out.annotations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}
