//! Workspace discovery: which crates exist, where their sources live.
//!
//! Reads the root `Cargo.toml` members list (skipping `vendor/` — the
//! shims are third-party API surface, not audited code) and each
//! member's manifest for its package name and `[lib] path` override
//! (the `dpta` facade keeps its sources at the repository root). No
//! TOML dependency: the two fields we need are extracted with a
//! line-based scan, which the manifests' committed style keeps stable.

use crate::rules::{FileCtx, Role};
use std::fs;
use std::path::{Path, PathBuf};

/// One workspace member crate.
#[derive(Debug, Clone)]
pub struct Member {
    /// Cargo package name (`dpta-core`, ...).
    pub name: String,
    /// Crate root (`lib.rs`) path, absolute.
    pub lib_root: PathBuf,
    /// Directory tree holding the crate's sources, absolute.
    pub src_dir: PathBuf,
}

/// A file selected for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Rule context (crate, role, workspace-relative path).
    pub ctx: FileCtx,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
}

/// Discovers the non-vendored workspace members under `root`.
pub fn discover_members(root: &Path) -> Result<Vec<Member>, String> {
    let manifest = root.join("Cargo.toml");
    let text = fs::read_to_string(&manifest)
        .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
    let mut members = Vec::new();
    for dir in parse_members(&text) {
        if dir.starts_with("vendor/") {
            continue;
        }
        let member_dir = root.join(&dir);
        let member_manifest = member_dir.join("Cargo.toml");
        let mtext = fs::read_to_string(&member_manifest)
            .map_err(|e| format!("cannot read {}: {e}", member_manifest.display()))?;
        let name = manifest_field(&mtext, "package", "name")
            .ok_or_else(|| format!("{}: no package name", member_manifest.display()))?;
        let lib_rel = manifest_field(&mtext, "lib", "path").unwrap_or_else(|| "src/lib.rs".into());
        let lib_root = normalize(&member_dir.join(lib_rel));
        if !lib_root.is_file() {
            return Err(format!(
                "{name}: crate root {} does not exist",
                lib_root.display()
            ));
        }
        let src_dir = lib_root
            .parent()
            .ok_or_else(|| format!("{name}: crate root has no parent directory"))?
            .to_path_buf();
        members.push(Member {
            name,
            lib_root,
            src_dir,
        });
    }
    if members.is_empty() {
        return Err(format!(
            "no workspace members found in {}",
            manifest.display()
        ));
    }
    Ok(members)
}

/// Collects every `.rs` file of every member, with its rule context.
pub fn collect_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let root = normalize(root);
    let mut out = Vec::new();
    for member in discover_members(&root)? {
        let mut files = Vec::new();
        walk(&member.src_dir, &mut files)?;
        files.sort();
        for abs in files {
            let rel = abs
                .strip_prefix(&root)
                .map_err(|_| format!("{} escapes the workspace root", abs.display()))?;
            let rel_path = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let in_bin_dir = rel_path.contains("/bin/");
            let is_main = abs.file_name().is_some_and(|f| f == "main.rs");
            let ctx = FileCtx {
                rel_path,
                crate_name: member.name.clone(),
                is_crate_root: abs == member.lib_root,
                role: if in_bin_dir || is_main {
                    Role::Bin
                } else {
                    Role::Lib
                },
            };
            out.push(SourceFile { ctx, abs_path: abs });
        }
    }
    out.sort_by(|a, b| a.ctx.rel_path.cmp(&b.ctx.rel_path));
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry under {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Resolves `.` / `..` components lexically (the workspace contains a
/// `../../src/lib.rs` lib override) without touching the filesystem.
fn normalize(path: &Path) -> PathBuf {
    let mut parts: Vec<std::path::Component> = Vec::new();
    for c in path.components() {
        match c {
            std::path::Component::CurDir => {}
            std::path::Component::ParentDir => {
                if matches!(parts.last(), Some(std::path::Component::Normal(_))) {
                    parts.pop();
                } else {
                    parts.push(c);
                }
            }
            other => parts.push(other),
        }
    }
    parts.iter().map(|c| c.as_os_str()).collect()
}

/// The `members = [ ... ]` entries of a workspace manifest.
fn parse_members(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if !in_members {
            if line.starts_with("members") && line.contains('[') {
                in_members = true;
            }
            continue;
        }
        if line.starts_with(']') {
            break;
        }
        if let Some(entry) = line.split('"').nth(1) {
            out.push(entry.to_string());
        }
    }
    out
}

/// The value of `key = "..."` inside `[section]`, if present.
fn manifest_field(manifest: &str, section: &str, key: &str) -> Option<String> {
    let mut in_section = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == format!("[{section}]");
            continue;
        }
        if !in_section {
            continue;
        }
        if let Some(rest) = line.strip_prefix(key) {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return rest.trim().split('"').nth(1).map(str::to_string);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_members_skipping_nothing_itself() {
        let toml = "[workspace]\nmembers = [\n    \"crates/core\",\n    \"vendor/rand\",\n]\n";
        assert_eq!(parse_members(toml), vec!["crates/core", "vendor/rand"]);
    }

    #[test]
    fn extracts_sectioned_fields() {
        let toml =
            "[package]\nname = \"dpta\"\n[lib]\nname = \"dpta\"\npath = \"../../src/lib.rs\"\n";
        assert_eq!(
            manifest_field(toml, "package", "name").as_deref(),
            Some("dpta")
        );
        assert_eq!(
            manifest_field(toml, "lib", "path").as_deref(),
            Some("../../src/lib.rs")
        );
        assert_eq!(manifest_field(toml, "package", "path"), None);
    }

    #[test]
    fn normalize_resolves_parent_components() {
        let p = normalize(Path::new("/a/b/crates/facade/../../src/lib.rs"));
        assert_eq!(p, Path::new("/a/b/src/lib.rs"));
    }
}
