//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The rules in [`crate::rules`] match *token sequences*, never raw
//! text, so occurrences of banned names inside strings, comments and
//! doc examples can never fire. The lexer therefore has to get exactly
//! four things right: comments (line, nested block, doc), string
//! literals (plain, raw, byte), char-vs-lifetime disambiguation, and
//! line/column tracking for `file:line:col` reporting.
//!
//! Line comments are additionally scanned for the audited suppression
//! syntax:
//!
//! ```text
//! // dpta-lint: allow(rule-a, rule-b) -- reason the invariant holds
//! ```
//!
//! A parsed annotation is returned alongside the token stream; an
//! annotation whose syntax is recognisably `dpta-lint:` but malformed
//! (missing rule list, missing `-- reason`) is surfaced so a typo can
//! never silently suppress nothing.

/// What a token is; only the distinctions the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`::` arrives as two `:`).
    Punct,
    /// String or byte-string literal; `empty` is true for `""`.
    Str {
        /// Whether the literal is the empty string.
        empty: bool,
    },
    /// Numeric literal.
    Num,
    /// Character or byte literal.
    Char,
    /// Lifetime such as `'a` (including `'static`).
    Lifetime,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text for `Ident`/`Punct` tokens (empty for literals —
    /// the rules never match on literal contents).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A parsed `// dpta-lint: allow(...) -- reason` suppression.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Line the comment sits on.
    pub line: u32,
    /// Rule ids listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// The justification after `--`; guaranteed non-empty.
    pub reason: String,
}

/// A `dpta-lint:` comment that failed to parse, with its position and
/// what was wrong — reported as a finding so typos cannot silently
/// suppress nothing.
#[derive(Debug, Clone)]
pub struct MalformedAnnotation {
    /// Line of the offending comment.
    pub line: u32,
    /// 1-based column of the comment start.
    pub col: u32,
    /// Human-readable description of the syntax error.
    pub message: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Well-formed suppression annotations.
    pub annotations: Vec<Annotation>,
    /// `dpta-lint:` comments that did not parse.
    pub malformed: Vec<MalformedAnnotation>,
}

/// Marker that introduces a suppression comment.
pub const ANNOTATION_MARKER: &str = "dpta-lint:";

/// Lexes `source` into [`Lexed`]. Never fails: unexpected bytes become
/// single-character `Punct` tokens, and an unterminated literal simply
/// ends at EOF (the real compiler rejects the file anyway).
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.toks.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                'r' if matches!(self.peek(1), Some('"') | Some('#')) && self.is_raw_start(1) => {
                    self.raw_string(1, line, col)
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, col);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit(line, col);
                }
                'b' if self.peek(1) == Some('r') && self.is_raw_start(2) => {
                    self.bump();
                    self.raw_string(1, line, col);
                }
                '"' => self.string(line, col),
                '\'' => self.quote(line, col),
                c if c.is_ascii_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    /// Does a raw-string head (`"` or `#...#"`) start `ahead` chars in?
    fn is_raw_start(&self, ahead: usize) -> bool {
        let mut i = ahead;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // Doc comments (`///`, `//!`) are documentation — the
        // suppression syntax is only honoured (and only validated) in
        // plain `//` comments, so docs may freely *describe* it.
        if !(text.starts_with("///") || text.starts_with("//!")) {
            self.scan_annotation(&text, line, col);
        }
    }

    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut len = 0usize;
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    self.bump();
                    len += 1;
                }
                _ => len += 1,
            }
        }
        self.push(TokKind::Str { empty: len == 0 }, String::new(), line, col);
    }

    fn raw_string(&mut self, skip: usize, line: u32, col: u32) {
        for _ in 0..skip {
            self.bump(); // 'r' (and the caller consumed a 'b' if present)
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut len = 0usize;
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes {
                    if self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    } else {
                        len += 1 + seen;
                        continue 'outer;
                    }
                }
                break;
            }
            len += 1;
        }
        self.push(TokKind::Str { empty: len == 0 }, String::new(), line, col);
    }

    /// A `'` is a char literal if it closes within a couple of chars or
    /// escapes; otherwise it is a lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        // 'x' / '\n' / '\'' => char; 'ident (no closing quote) => lifetime.
        if self.peek(1) == Some('\\') || self.peek(2) == Some('\'') {
            self.char_lit(line, col);
        } else {
            self.bump(); // '\''
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line, col);
        }
    }

    fn char_lit(&mut self, line: u32, col: u32) {
        self.bump(); // '\''
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
        self.push(TokKind::Char, String::new(), line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        while let Some(c) = self.peek(0) {
            let in_number = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if in_number {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, String::new(), line, col);
    }

    fn scan_annotation(&mut self, comment: &str, line: u32, col: u32) {
        let Some(at) = comment.find(ANNOTATION_MARKER) else {
            return;
        };
        let rest = comment[at + ANNOTATION_MARKER.len()..].trim();
        let fail = |message: &str| MalformedAnnotation {
            line,
            col,
            message: message.to_string(),
        };
        let Some(body) = rest.strip_prefix("allow") else {
            self.out.malformed.push(fail(
                "expected `allow(<rules>) -- <reason>` after `dpta-lint:`",
            ));
            return;
        };
        let body = body.trim_start();
        let Some(body) = body.strip_prefix('(') else {
            self.out.malformed.push(fail("expected `(` after `allow`"));
            return;
        };
        let Some(close) = body.find(')') else {
            self.out.malformed.push(fail("unclosed `allow(` rule list"));
            return;
        };
        let rules: Vec<String> = body[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            self.out
                .malformed
                .push(fail("empty rule list in `allow()`"));
            return;
        }
        let tail = body[close + 1..].trim_start();
        let Some(reason) = tail.strip_prefix("--") else {
            self.out
                .malformed
                .push(fail("missing `-- <reason>` after the rule list"));
            return;
        };
        let reason = reason.trim().to_string();
        if reason.is_empty() {
            self.out
                .malformed
                .push(fail("empty suppression reason after `--`"));
            return;
        }
        self.out.annotations.push(Annotation {
            line,
            rules,
            reason,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap<SystemTime>";
            let r = r#"Instant::now"#;
            let b = b"HashMap";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|i| i == "HashMap" || i == "SystemTime"));
    }

    #[test]
    fn doc_comments_do_not_leak_tokens() {
        let src = "/// let x = map.unwrap();\nfn f() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let src = "ab\n  cd";
        let lexed = lex(src);
        assert_eq!((lexed.toks[0].line, lexed.toks[0].col), (1, 1));
        assert_eq!((lexed.toks[1].line, lexed.toks[1].col), (2, 3));
    }

    #[test]
    fn well_formed_annotation_parses() {
        let src = "// dpta-lint: allow(no-wall-clock, panic-hygiene) -- timing is display-only\nfn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.annotations.len(), 1);
        let a = &lexed.annotations[0];
        assert_eq!(a.line, 1);
        assert_eq!(a.rules, vec!["no-wall-clock", "panic-hygiene"]);
        assert_eq!(a.reason, "timing is display-only");
        assert!(lexed.malformed.is_empty());
    }

    #[test]
    fn malformed_annotations_are_surfaced() {
        for bad in [
            "// dpta-lint: allow(no-wall-clock)",       // missing reason
            "// dpta-lint: allow() -- reason",          // empty rules
            "// dpta-lint: deny(x) -- reason",          // not allow
            "// dpta-lint: allow(no-wall-clock) -- ",   // empty reason
            "// dpta-lint: allow(no-wall-clock -- oop", // unclosed
        ] {
            let lexed = lex(bad);
            assert_eq!(lexed.malformed.len(), 1, "{bad}");
            assert!(lexed.annotations.is_empty(), "{bad}");
        }
    }

    #[test]
    fn trailing_annotation_records_its_line() {
        let src =
            "let x = 1;\nlet t = Instant::now(); // dpta-lint: allow(no-wall-clock) -- display\n";
        let lexed = lex(src);
        assert_eq!(lexed.annotations[0].line, 2);
    }

    #[test]
    fn raw_string_with_hashes_and_quotes_inside() {
        let src = r####"let s = r##"has "quote" and # inside"##; after();"####;
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"quote".to_string()));
    }

    #[test]
    fn numbers_including_floats_are_single_tokens() {
        let lexed = lex("let x = 0.5e3 + 1_000 - 0xFF;");
        let nums = lexed.toks.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 3);
    }
}
