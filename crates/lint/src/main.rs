//! CLI for `dpta-lint`: lints the workspace, prints a rustc-style (or
//! `--json`) report, exits non-zero on any finding.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use dpta_lint::{lint_workspace, report, rules, RuleSet, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dpta-lint — static enforcement of the workspace's determinism & privacy-flow invariants

USAGE:
    dpta-lint [--workspace] [OPTIONS]

OPTIONS:
    --workspace              Lint every non-vendored workspace crate (the default)
    --root <DIR>             Workspace root (default: current directory)
    --json                   Machine-readable JSON report instead of text
    --annotations            Print the audit of every `dpta-lint: allow` suppression
    --annotations-out <FILE> Write the suppression audit to FILE (for CI artifacts)
    --only <RULE>            Run only RULE (repeatable)
    --disable <RULE>         Skip RULE (repeatable)
    --list-rules             Print the rule catalog and exit
    -h, --help               This help

EXIT STATUS:
    0 — no findings; 1 — findings reported; 2 — usage or I/O error
";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("dpta-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut print_annotations = false;
    let mut annotations_out: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut ruleset = RuleSet::all();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--json" => json = true,
            "--annotations" => print_annotations = true,
            "--annotations-out" => {
                annotations_out = Some(PathBuf::from(
                    args.next().ok_or("--annotations-out needs a path")?,
                ));
            }
            "--only" => {
                let rule = args.next().ok_or("--only needs a rule id")?;
                if !rules::is_known_rule(&rule) {
                    return Err(format!("unknown rule `{rule}` (try --list-rules)"));
                }
                only.push(rule);
            }
            "--disable" => {
                let rule = args.next().ok_or("--disable needs a rule id")?;
                if !rules::is_known_rule(&rule) {
                    return Err(format!("unknown rule `{rule}` (try --list-rules)"));
                }
                ruleset.disable(&rule);
            }
            "--list-rules" => {
                for r in ALL_RULES {
                    println!("{r}");
                }
                return Ok(true);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !only.is_empty() {
        ruleset.only(only);
    }

    let outcome = lint_workspace(&root, &ruleset)?;
    if json {
        print!(
            "{}",
            report::render_json(
                &outcome.findings,
                &outcome.annotations,
                outcome.files_scanned
            )
        );
    } else {
        print!("{}", report::render_text(&outcome.findings));
        if outcome.findings.is_empty() {
            eprintln!(
                "dpta-lint: clean — {} files, {} suppression(s) on record",
                outcome.files_scanned,
                outcome.annotations.len()
            );
        } else {
            eprintln!(
                "dpta-lint: {} finding(s) across {} files",
                outcome.findings.len(),
                outcome.files_scanned
            );
        }
    }
    if print_annotations && !json {
        print!("{}", report::render_annotations(&outcome.annotations));
    }
    if let Some(path) = annotations_out {
        std::fs::write(&path, report::render_annotations(&outcome.annotations))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(outcome.findings.is_empty())
}
