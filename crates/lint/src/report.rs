//! Rendering: rustc-style text, machine-readable JSON, and the
//! suppression audit.
//!
//! JSON is emitted by hand (string escaping plus literal number/bool
//! formatting) so the lint stays dependency-free; the shape is an
//! object with `findings`, `annotations` and `summary` keys.

use crate::rules::{AnnotationRecord, Finding};

/// `file:line:col: rule: message`, one finding per line.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            f.path, f.line, f.col, f.rule, f.message
        ));
    }
    out
}

/// The suppression audit: every annotation with its reason and whether
/// it still suppresses anything.
pub fn render_annotations(records: &[AnnotationRecord]) -> String {
    if records.is_empty() {
        return "no dpta-lint suppressions in the workspace\n".to_string();
    }
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{}:{}: allow({}) -- {} [{}]\n",
            r.path,
            r.line,
            r.rules.join(", "),
            r.reason,
            if r.used { "used" } else { "UNUSED" }
        ));
    }
    out
}

/// The whole run as one JSON object.
pub fn render_json(findings: &[Finding], records: &[AnnotationRecord], files: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}",
            json_str(&f.path),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"annotations\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rules = r
            .rules
            .iter()
            .map(|s| json_str(s))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"rules\": [{}], \"reason\": {}, \"used\": {}}}",
            json_str(&r.path),
            r.line,
            rules,
            json_str(&r.reason),
            r.used
        ));
    }
    if !records.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"summary\": {{\"files\": {}, \"findings\": {}, \"annotations\": {}}}\n}}\n",
        files,
        findings.len(),
        records.len()
    ));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_finding() -> Finding {
        Finding {
            path: "crates/dp/src/noise.rs".into(),
            line: 13,
            col: 5,
            rule: "deterministic-containers",
            message: "a \"quoted\" message".into(),
        }
    }

    #[test]
    fn text_is_rustc_style() {
        let text = render_text(&[sample_finding()]);
        assert!(text.starts_with("crates/dp/src/noise.rs:13:5: deterministic-containers:"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = render_json(&[sample_finding()], &[], 42);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"files\": 42"));
        assert!(json.contains("\"findings\": 1"));
    }

    #[test]
    fn audit_marks_unused() {
        let rec = AnnotationRecord {
            path: "crates/dp/src/intern.rs".into(),
            line: 31,
            rules: vec!["deterministic-containers".into()],
            reason: "FastMap backing store".into(),
            used: false,
        };
        assert!(render_annotations(&[rec]).contains("[UNUSED]"));
    }
}
