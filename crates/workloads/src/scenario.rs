//! Scenario = one Table X parameter assignment turned into runnable
//! [`Instance`] batches.

use crate::batching::{batch_orders, TaxiGroups, TAXI_GROUPS};
use crate::budgets::BudgetGen;
use crate::chengdu::ChengduSim;
use crate::synthetic::{normal_points, uniform_points};
use dpta_core::{Instance, Task, Worker};
use dpta_spatial::Point;
use serde::{Deserialize, Serialize};

/// The three data sets of Section VII-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Ride-hailing simulator standing in for the Didi Chengdu trace.
    Chengdu,
    /// 2-D normal, variance 150.
    Normal,
    /// 2-D uniform in a 100×100 plane.
    Uniform,
}

impl Dataset {
    /// All three data sets.
    pub fn all() -> [Dataset; 3] {
        [Dataset::Chengdu, Dataset::Normal, Dataset::Uniform]
    }

    /// Lower-case name as used in the paper's figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Chengdu => "chengdu",
            Dataset::Normal => "normal",
            Dataset::Uniform => "uniform",
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How task values `v_i` are assigned (the paper's conclusion lists
/// value models beyond a constant as future work: "the task value is
/// related to task itself, travel distance and privacy cost").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValueModel {
    /// Every task is worth the scenario's `task_value` — the paper's
    /// evaluation setting (Table X sweeps this constant).
    Constant,
    /// Ride-hailing pricing: `v = base + per_km · trip_length`, using
    /// the order's pickup→drop-off distance. Only the chengdu simulator
    /// carries trips; the synthetic data sets fall back to `base`.
    PerTripKm {
        /// Flag-fall component.
        base: f64,
        /// Per-kilometre component.
        per_km: f64,
    },
}

impl ValueModel {
    /// Decodes the trip length (km) back out of a task value priced by
    /// this model — the inverse of the `PerTripKm` pricing formula,
    /// clamped at zero. [`Constant`](ValueModel::Constant) values carry
    /// no trip, so the decode is zero.
    ///
    /// The streaming layer's service-duration model rides on this: a
    /// matched worker's time-in-service is derived from the trip length
    /// its task's value encodes, without the stream having to carry
    /// drop-off locations.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpta_workloads::ValueModel;
    ///
    /// let pricing = ValueModel::PerTripKm { base: 2.0, per_km: 0.8 };
    /// assert!((pricing.trip_km(6.0) - 5.0).abs() < 1e-12);
    /// assert_eq!(pricing.trip_km(1.0), 0.0); // below flag-fall: clamped
    /// assert_eq!(ValueModel::Constant.trip_km(4.5), 0.0);
    /// ```
    pub fn trip_km(&self, value: f64) -> f64 {
        match *self {
            ValueModel::Constant => 0.0,
            ValueModel::PerTripKm { base, per_km } => {
                if per_km > 0.0 {
                    ((value - base) / per_km).max(0.0)
                } else {
                    0.0
                }
            }
        }
    }
}

/// One experimental configuration (Table X). Defaults are the bold
/// values: worker-task ratio 2, task value 4.5, worker range 1.4,
/// privacy budget range [0.5, 1.75], budget group size 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Which data set to generate.
    pub dataset: Dataset,
    /// Worker-task ratio `pwt = |S_W| / |S_T|`.
    pub worker_task_ratio: f64,
    /// Task value `v_i` (uniform across tasks, as swept in Figures 5/6).
    pub task_value: f64,
    /// Value model (see [`ValueModel`]).
    pub value_model: ValueModel,
    /// Worker range `r_j` in km (uniform across workers).
    pub worker_range: f64,
    /// Privacy budget draw range.
    pub budget_range: (f64, f64),
    /// Privacy budget group size `Z`.
    pub budget_group_size: usize,
    /// Tasks per batch (paper: at most 1000).
    pub batch_size: usize,
    /// Number of batches to generate.
    pub n_batches: usize,
    /// Data-set seed.
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            dataset: Dataset::Chengdu,
            worker_task_ratio: 2.0,
            task_value: 4.5,
            value_model: ValueModel::Constant,
            worker_range: 1.4,
            budget_range: (0.5, 1.75),
            budget_group_size: 7,
            batch_size: 1000,
            n_batches: 3,
            seed: 42,
        }
    }
}

impl Scenario {
    /// A scenario for `dataset` with every other knob at its Table X
    /// default.
    pub fn for_dataset(dataset: Dataset) -> Self {
        Scenario {
            dataset,
            ..Scenario::default()
        }
    }

    /// Workers per batch.
    pub fn workers_per_batch(&self) -> usize {
        ((self.batch_size as f64) * self.worker_task_ratio)
            .round()
            .max(1.0) as usize
    }

    /// Generates the batches as ready-to-run instances.
    pub fn batches(&self) -> Vec<Instance> {
        assert!(self.batch_size > 0, "batch_size must be positive");
        assert!(self.n_batches > 0, "n_batches must be positive");
        assert!(
            self.worker_task_ratio > 0.0 && self.worker_task_ratio.is_finite(),
            "worker-task ratio must be positive"
        );
        match self.dataset {
            Dataset::Chengdu => self.chengdu_batches(),
            Dataset::Normal | Dataset::Uniform => self.synthetic_batches(),
        }
    }

    /// chengdu: a day of simulated orders batched by timestamp, served
    /// by ten circularly-reused taxi groups (Section VII-B).
    fn chengdu_batches(&self) -> Vec<Instance> {
        let sim = ChengduSim::new(self.seed);
        let orders = sim.orders(self.batch_size * self.n_batches);
        let group_size = self.workers_per_batch();
        let fleet = sim.taxis(group_size * TAXI_GROUPS);
        let groups = TaxiGroups::new(&fleet, group_size);
        batch_orders(&orders, self.batch_size)
            .into_iter()
            .enumerate()
            .map(|(b, batch)| {
                let tasks: Vec<Task> = batch
                    .iter()
                    .map(|o| {
                        let value = match self.value_model {
                            ValueModel::Constant => self.task_value,
                            ValueModel::PerTripKm { base, per_km } => {
                                base + per_km * o.pickup.distance(&o.dropoff)
                            }
                        };
                        Task::new(o.pickup, value)
                    })
                    .collect();
                let workers: Vec<Worker> = groups
                    .for_batch(b)
                    .iter()
                    .map(|t| Worker::new(t.location, self.worker_range))
                    .collect();
                self.instance(b, tasks, workers)
            })
            .collect()
    }

    /// uniform / normal: fresh point sets per batch from the same
    /// distribution (the paper draws one large point set and splits it,
    /// which is statistically identical for i.i.d. points).
    fn synthetic_batches(&self) -> Vec<Instance> {
        (0..self.n_batches)
            .map(|b| {
                let seed = self.seed ^ ((b as u64 + 1) * 0x9E37_79B9);
                let n_t = self.batch_size;
                let n_w = self.workers_per_batch();
                let (task_pts, worker_pts): (Vec<Point>, Vec<Point>) = match self.dataset {
                    Dataset::Uniform => (
                        uniform_points(seed, n_t),
                        uniform_points(seed ^ 0xFACE, n_w),
                    ),
                    Dataset::Normal => {
                        (normal_points(seed, n_t), normal_points(seed ^ 0xFACE, n_w))
                    }
                    Dataset::Chengdu => unreachable!(),
                };
                let base_value = match self.value_model {
                    ValueModel::Constant => self.task_value,
                    // Synthetic points carry no trips; use the flag-fall.
                    ValueModel::PerTripKm { base, .. } => base,
                };
                let tasks = task_pts
                    .into_iter()
                    .map(|p| Task::new(p, base_value))
                    .collect();
                let workers = worker_pts
                    .into_iter()
                    .map(|p| Worker::new(p, self.worker_range))
                    .collect();
                self.instance(b, tasks, workers)
            })
            .collect()
    }

    fn instance(&self, batch: usize, tasks: Vec<Task>, workers: Vec<Worker>) -> Instance {
        let gen = BudgetGen::new(self.seed, batch, self.budget_range, self.budget_group_size);
        Instance::from_locations(tasks, workers, |i, j| gen.vector(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(dataset: Dataset) -> Scenario {
        Scenario {
            dataset,
            batch_size: 200,
            n_batches: 2,
            ..Scenario::default()
        }
    }

    #[test]
    fn batches_have_requested_shape() {
        for ds in Dataset::all() {
            let sc = small(ds);
            let batches = sc.batches();
            assert_eq!(batches.len(), 2, "{ds}");
            for inst in &batches {
                assert_eq!(inst.n_tasks(), 200, "{ds}");
                assert_eq!(inst.n_workers(), 400, "{ds}");
                assert!(inst.tasks().iter().all(|t| t.value == 4.5));
                assert!(inst.workers().iter().all(|w| w.radius == 1.4));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for ds in Dataset::all() {
            let a = small(ds).batches();
            let b = small(ds).batches();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.n_tasks(), y.n_tasks());
                assert_eq!(x.tasks()[0].location, y.tasks()[0].location, "{ds}");
                assert_eq!(x.workers()[3].location, y.workers()[3].location, "{ds}");
            }
        }
    }

    #[test]
    fn feasible_pairs_have_budget_vectors_of_group_size() {
        let sc = Scenario {
            budget_group_size: 7,
            ..small(Dataset::Uniform)
        };
        let inst = &sc.batches()[0];
        let mut checked = 0;
        for j in 0..inst.n_workers() {
            for &i in inst.reach(j) {
                let b = inst.budget(i, j).unwrap();
                assert_eq!(b.len(), 7);
                for &e in b.slots() {
                    assert!((0.5..1.75).contains(&e));
                }
                checked += 1;
            }
        }
        assert!(checked > 0, "expected at least one feasible pair");
    }

    #[test]
    fn chengdu_is_sparser_than_normal_within_service_areas() {
        // The paper's Section VII-D.2 narrative: a worker in chengdu can
        // propose to fewer tasks than in normal for the same range. This
        // is the load-bearing calibration of the simulator.
        let chengdu = small(Dataset::Chengdu).batches();
        let normal = small(Dataset::Normal).batches();
        let density = |batches: &[Instance]| {
            batches.iter().map(|b| b.mean_tasks_in_range()).sum::<f64>() / batches.len() as f64
        };
        let dc = density(&chengdu);
        let dn = density(&normal);
        assert!(
            dc < dn,
            "chengdu density {dc} must be below normal density {dn}"
        );
        assert!(dn > 0.0, "normal dataset must have some reachable tasks");
    }

    #[test]
    fn worker_ratio_scales_worker_count() {
        let sc = Scenario {
            worker_task_ratio: 1.5,
            ..small(Dataset::Uniform)
        };
        assert_eq!(sc.workers_per_batch(), 300);
        let inst = &sc.batches()[0];
        assert_eq!(inst.n_workers(), 300);
    }

    #[test]
    fn per_trip_value_model_scales_with_trip_length() {
        let sc = Scenario {
            value_model: ValueModel::PerTripKm {
                base: 2.0,
                per_km: 0.8,
            },
            ..small(Dataset::Chengdu)
        };
        let inst = &sc.batches()[0];
        let values: Vec<f64> = inst.tasks().iter().map(|t| t.value).collect();
        // Values vary with trips and never drop below the flag-fall.
        assert!(values.iter().all(|&v| v >= 2.0));
        let spread = values.iter().cloned().fold(f64::MIN, f64::max)
            - values.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread > 0.5,
            "trip pricing must spread values, got {spread}"
        );
        // Synthetic fallback: every value equals the flag-fall.
        let sc = Scenario {
            value_model: ValueModel::PerTripKm {
                base: 2.0,
                per_km: 0.8,
            },
            ..small(Dataset::Uniform)
        };
        assert!(sc.batches()[0].tasks().iter().all(|t| t.value == 2.0));
    }

    #[test]
    fn worker_range_controls_reach() {
        let narrow = Scenario {
            worker_range: 0.8,
            ..small(Dataset::Normal)
        };
        let wide = Scenario {
            worker_range: 2.0,
            ..small(Dataset::Normal)
        };
        let dn = narrow.batches()[0].mean_tasks_in_range();
        let dw = wide.batches()[0].mean_tasks_in_range();
        assert!(dw > dn, "wider range must reach more tasks ({dn} vs {dw})");
    }
}
