//! Batch splitting per Section VII-B: "We split the orders into batches
//! by timestamp. Each batch contains at most 1000 orders. We also split
//! the taxis into ten groups ... We use each worker group circularly
//! for each batch."

use crate::chengdu::{Order, Taxi};

/// Number of circularly-used taxi groups (paper: ten).
pub const TAXI_GROUPS: usize = 10;

/// Splits time-sorted orders into batches of at most `batch_size`.
/// Panics if the orders are not sorted by release time — batches are
/// time windows, so unsorted input indicates a caller bug.
pub fn batch_orders(orders: &[Order], batch_size: usize) -> Vec<&[Order]> {
    assert!(batch_size > 0, "batch_size must be positive");
    for w in orders.windows(2) {
        assert!(
            w[0].release_time <= w[1].release_time,
            "orders must be sorted by release time"
        );
    }
    orders.chunks(batch_size).collect()
}

/// The ten circularly-used taxi groups.
#[derive(Debug, Clone)]
pub struct TaxiGroups {
    groups: Vec<Vec<Taxi>>,
}

impl TaxiGroups {
    /// Splits the fleet into [`TAXI_GROUPS`] groups of `group_size`
    /// taxis each, consuming the fleet round-robin so each group draws
    /// from the whole spatial distribution. Panics when the fleet is
    /// too small to fill the groups.
    pub fn new(fleet: &[Taxi], group_size: usize) -> Self {
        assert!(group_size > 0, "group_size must be positive");
        let needed = group_size * TAXI_GROUPS;
        assert!(
            fleet.len() >= needed,
            "fleet of {} cannot fill {TAXI_GROUPS} groups of {group_size}",
            fleet.len()
        );
        let mut groups: Vec<Vec<Taxi>> = (0..TAXI_GROUPS)
            .map(|_| Vec::with_capacity(group_size))
            .collect();
        for (k, taxi) in fleet.iter().take(needed).enumerate() {
            groups[k % TAXI_GROUPS].push(*taxi);
        }
        TaxiGroups { groups }
    }

    /// The group serving batch `batch_index` (circular reuse).
    pub fn for_batch(&self, batch_index: usize) -> &[Taxi] {
        &self.groups[batch_index % TAXI_GROUPS]
    }

    /// Taxis per group.
    pub fn group_size(&self) -> usize {
        self.groups[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chengdu::ChengduSim;
    use dpta_spatial::Point;

    #[test]
    fn batches_respect_size_and_cover_everything() {
        let sim = ChengduSim::new(3);
        let orders = sim.orders(2500);
        let batches = batch_orders(&orders, 1000);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 1000);
        assert_eq!(batches[1].len(), 1000);
        assert_eq!(batches[2].len(), 500);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 2500);
        // Time windows: every order in batch k precedes batch k+1.
        assert!(batches[0].last().unwrap().release_time <= batches[1][0].release_time);
    }

    #[test]
    #[should_panic(expected = "sorted by release time")]
    fn unsorted_orders_panic() {
        let mk = |t: f64| Order {
            release_time: t,
            pickup: Point::ORIGIN,
            dropoff: Point::ORIGIN,
            passengers: 1,
        };
        let orders = vec![mk(5.0), mk(1.0)];
        let _ = batch_orders(&orders, 10);
    }

    #[test]
    fn taxi_groups_are_circular_and_disjoint() {
        let sim = ChengduSim::new(3);
        let fleet = sim.taxis(1000);
        let groups = TaxiGroups::new(&fleet, 100);
        assert_eq!(groups.group_size(), 100);
        // Circular reuse.
        assert_eq!(groups.for_batch(0), groups.for_batch(TAXI_GROUPS));
        assert_eq!(groups.for_batch(3), groups.for_batch(3 + 2 * TAXI_GROUPS));
        // Disjoint groups: round-robin split never duplicates a taxi.
        let a = groups.for_batch(0);
        let b = groups.for_batch(1);
        for t in a {
            assert!(!b.contains(t));
        }
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn undersized_fleet_panics() {
        let sim = ChengduSim::new(3);
        let fleet = sim.taxis(50);
        let _ = TaxiGroups::new(&fleet, 100);
    }
}
