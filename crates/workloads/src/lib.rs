//! Workload generators for the DPTA experiments (Section VII-A/B).
//!
//! Three data sets drive the paper's evaluation:
//!
//! * **chengdu** — the Didi Chuxing Chengdu trace (2016-11-18). The real
//!   trace is distributed through the gated GAIA program, so this crate
//!   ships a seeded *ride-hailing simulator* ([`chengdu`]) that
//!   reproduces the properties the evaluation depends on: the UTM-style
//!   km frame of Fig. 3, timestamped orders batched into ≤1000-order
//!   windows, ten taxi groups used circularly, and — crucially — a task
//!   density inside worker service areas that is *sparser* than the
//!   `normal` synthetic set (the paper's explanation of PGT's relative
//!   utility, Section VII-D.2);
//! * **uniform** — 2-D uniform points in a 100×100 plane;
//! * **normal** — 2-D normal points with variance 150.
//!
//! [`scenario`] turns a Table X parameter assignment into ready-to-run
//! [`Instance`](dpta_core::Instance) batches; [`budgets`] derives the
//! per-pair privacy budget vectors (group size `Z = 7`, values drawn
//! uniformly from the configured range).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod batching;
pub mod budgets;
pub mod chengdu;
pub mod scenario;
pub mod synthetic;

pub use scenario::{Dataset, Scenario, ValueModel};
