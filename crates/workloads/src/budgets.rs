//! Privacy budget vector generation (Table X: privacy budget range
//! `[0.5, 1.75]` by default, group size `Z = 7`).
//!
//! Each feasible (task, worker) pair owns a vector of `Z` budgets drawn
//! i.i.d. uniformly from the configured range. The draw is a pure
//! function of `(seed, batch, task, worker, slot)` so that instances
//! are reproducible regardless of construction order.

use dpta_dp::BudgetVector;

/// SplitMix64 finalizer (same mixing core as the dp crate's noise
/// derivation; duplicated to keep this crate's hashing self-contained).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic uniform draw in `[lo, hi)` keyed by four indices.
fn hash_uniform(seed: u64, a: u64, b: u64, c: u64, lo: f64, hi: f64) -> f64 {
    let mut h = splitmix64(seed ^ 0xB0D6_E7F1_0123_4567);
    h = splitmix64(h ^ a);
    h = splitmix64(h ^ (b << 21));
    h = splitmix64(h ^ (c << 42));
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    lo + u * (hi - lo)
}

/// Generator for per-pair budget vectors.
#[derive(Debug, Clone, Copy)]
pub struct BudgetGen {
    seed: u64,
    batch: u64,
    /// Inclusive-exclusive draw range (Table X groups, e.g. `[0.5, 0.75)`).
    pub range: (f64, f64),
    /// Slots per pair (`Z`, Table X: 7).
    pub group_size: usize,
}

impl BudgetGen {
    /// Creates a generator for one batch of one scenario.
    pub fn new(seed: u64, batch: usize, range: (f64, f64), group_size: usize) -> Self {
        assert!(
            range.0 > 0.0 && range.1 >= range.0,
            "budget range must satisfy 0 < lo <= hi, got {range:?}"
        );
        assert!(group_size > 0, "budget group size must be positive");
        BudgetGen {
            seed,
            batch: batch as u64,
            range,
            group_size,
        }
    }

    /// The budget vector for pair (task, worker).
    pub fn vector(&self, task: usize, worker: usize) -> BudgetVector {
        let (lo, hi) = self.range;
        BudgetVector::new(
            (0..self.group_size)
                .map(|u| {
                    if hi == lo {
                        lo
                    } else {
                        hash_uniform(
                            self.seed ^ self.batch.rotate_left(17),
                            task as u64,
                            worker as u64,
                            u as u64,
                            lo,
                            hi,
                        )
                    }
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_are_deterministic_and_in_range() {
        let g = BudgetGen::new(42, 0, (0.5, 1.75), 7);
        let a = g.vector(3, 9);
        let b = g.vector(3, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        for &e in a.slots() {
            assert!((0.5..1.75).contains(&e), "slot {e} out of range");
        }
    }

    #[test]
    fn different_keys_differ() {
        let g = BudgetGen::new(42, 0, (0.5, 1.75), 7);
        assert_ne!(g.vector(3, 9), g.vector(3, 10));
        assert_ne!(g.vector(3, 9), g.vector(4, 9));
        let g2 = BudgetGen::new(42, 1, (0.5, 1.75), 7);
        assert_ne!(g.vector(3, 9), g2.vector(3, 9));
        let g3 = BudgetGen::new(43, 0, (0.5, 1.75), 7);
        assert_ne!(g.vector(3, 9), g3.vector(3, 9));
    }

    #[test]
    fn draws_cover_the_range_roughly_uniformly() {
        let g = BudgetGen::new(1, 0, (0.5, 1.75), 1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|k| g.vector(k, 0).slot(0)).sum::<f64>() / n as f64;
        assert!((mean - 1.125).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn degenerate_range_gives_constant_budgets() {
        let g = BudgetGen::new(1, 0, (1.0, 1.0), 3);
        assert_eq!(g.vector(0, 0).slots(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "budget range")]
    fn invalid_range_panics() {
        let _ = BudgetGen::new(1, 0, (0.0, 1.0), 3);
    }
}
