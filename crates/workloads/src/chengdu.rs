//! A seeded ride-hailing simulator standing in for the Didi Chuxing
//! Chengdu trace (2016-11-18).
//!
//! **Substitution note (see DESIGN.md §3).** The real trace is gated
//! behind Didi's GAIA program; this module synthesises a day of orders
//! and a taxi fleet with the properties the paper's evaluation actually
//! exercises:
//!
//! * UTM-style km coordinates matching Fig. 3 — orders concentrated in
//!   a ~`[340,460]×[3340,3440]` window, taxis spread over the wider
//!   ~`[300,500]×[3300,3500]` frame;
//! * timestamped orders over 24 h with AM/PM rush-hour peaks, so that
//!   batching by timestamp (Section VII-B) is meaningful;
//! * road-network sparsity: pickups cluster on a street grid and a
//!   handful of hotspots, leaving most of the frame empty. Within a
//!   1.4 km service radius a taxi therefore sees *fewer* tasks than in
//!   the `normal` synthetic set — the property the paper uses to
//!   explain PGT's weaker utility on chengdu (Section VII-D.2), and
//!   which `scenario::tests` asserts.

use crate::synthetic::{box_muller, gaussian_around, uniform_in};
use dpta_spatial::{Aabb, Point};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Order window of Fig. 3(a), km.
pub fn order_frame() -> Aabb {
    Aabb::from_extents(340.0, 3340.0, 460.0, 3440.0)
}

/// Taxi window of Fig. 3(b), km.
pub fn taxi_frame() -> Aabb {
    Aabb::from_extents(300.0, 3300.0, 500.0, 3500.0)
}

/// One taxi request: the paper's "order tuple ... consisting of a
/// release time, a pickup location, a drop-off location, and some
/// passengers".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Order {
    /// Seconds since midnight.
    pub release_time: f64,
    /// Pickup location (task location in the assignment problem).
    pub pickup: Point,
    /// Drop-off location.
    pub dropoff: Point,
    /// Passenger count (1–4).
    pub passengers: u8,
}

/// One taxi: "a basic message consisting of the original location of
/// the taxi and its capacity".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Taxi {
    /// Initial location (worker location in the assignment problem).
    pub location: Point,
    /// Seat capacity (typically 4).
    pub capacity: u8,
}

/// The simulator configuration; [`ChengduSim::new`] picks values tuned
/// to the sparsity calibration described in the module docs.
#[derive(Debug, Clone)]
pub struct ChengduSim {
    seed: u64,
    hotspots: Vec<(Point, f64)>,
    /// Street-grid spacing in km.
    street_spacing: f64,
    /// Share of pickups snapped to the street grid (vs hotspots).
    street_share: f64,
}

impl ChengduSim {
    /// Builds a simulator with a deterministic city layout derived from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC17D_u64);
        let center = order_frame().center();
        // A dozen activity hotspots (stations, malls, business parks)
        // scattered around downtown; sigma in km.
        let hotspots = (0..12)
            .map(|_| {
                let c = order_frame().clamp(&gaussian_around(&mut rng, center, 18.0));
                let sigma = rng.gen_range(2.0..6.0);
                (c, sigma)
            })
            .collect();
        ChengduSim {
            seed,
            hotspots,
            street_spacing: 2.5,
            street_share: 0.45,
        }
    }

    /// Generates `n` orders over a 24 h day, sorted by release time.
    pub fn orders(&self, n: usize) -> Vec<Order> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x04D3_u64);
        let mut orders: Vec<Order> = (0..n)
            .map(|_| {
                let release_time = self.sample_time(&mut rng);
                let pickup = self.sample_location(&mut rng);
                // Trips average ~5 km with a heavy-ish tail.
                let trip_km = 1.0 + rng.gen_range(0.0f64..1.0).powi(2) * 14.0;
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                let dropoff = order_frame().clamp(&Point::new(
                    pickup.x + trip_km * theta.cos(),
                    pickup.y + trip_km * theta.sin(),
                ));
                let passengers = 1 + (rng.gen_range(0.0f64..1.0).powi(3) * 3.0).round() as u8;
                Order {
                    release_time,
                    pickup,
                    dropoff,
                    passengers,
                }
            })
            .collect();
        orders.sort_by(|a, b| a.release_time.partial_cmp(&b.release_time).unwrap());
        orders
    }

    /// Generates the taxi fleet: most cruise the downtown hotspots, the
    /// rest are spread over the wider frame of Fig. 3(b).
    pub fn taxis(&self, n: usize) -> Vec<Taxi> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7A11_u64);
        (0..n)
            .map(|_| {
                let location = if rng.gen_bool(0.7) {
                    let (c, sigma) = self.hotspots[rng.gen_range(0..self.hotspots.len())];
                    taxi_frame().clamp(&gaussian_around(&mut rng, c, sigma * 2.0))
                } else {
                    uniform_in(&mut rng, &taxi_frame())
                };
                Taxi {
                    location,
                    capacity: 4,
                }
            })
            .collect()
    }

    /// Rush-hour arrival process: mixture of an 08:15 peak, an 18:30
    /// peak (σ ≈ 1.6 h each) and a uniform base load.
    fn sample_time(&self, rng: &mut StdRng) -> f64 {
        const DAY: f64 = 86_400.0;
        let pick: f64 = rng.gen_range(0.0..1.0);
        let t = if pick < 0.35 {
            let (z, _) = box_muller(rng);
            8.25 * 3600.0 + z * 1.6 * 3600.0
        } else if pick < 0.70 {
            let (z, _) = box_muller(rng);
            18.5 * 3600.0 + z * 1.6 * 3600.0
        } else {
            rng.gen_range(0.0..DAY)
        };
        t.rem_euclid(DAY)
    }

    /// Pickup locations: street grid (axis-aligned roads with small
    /// jitter) or hotspot clusters.
    fn sample_location(&self, rng: &mut StdRng) -> Point {
        let frame = order_frame();
        let p = if rng.gen_range(0.0f64..1.0) < self.street_share {
            // Snap one axis to the nearest street line.
            let raw = uniform_in(rng, &frame);
            let jitter = rng.gen_range(-0.06..0.06);
            if rng.gen_bool(0.5) {
                let snapped = frame.min.x
                    + ((raw.x - frame.min.x) / self.street_spacing).round() * self.street_spacing;
                Point::new(snapped + jitter, raw.y)
            } else {
                let snapped = frame.min.y
                    + ((raw.y - frame.min.y) / self.street_spacing).round() * self.street_spacing;
                Point::new(raw.x, snapped + jitter)
            }
        } else {
            let (c, sigma) = self.hotspots[rng.gen_range(0..self.hotspots.len())];
            gaussian_around(rng, c, sigma)
        };
        frame.clamp(&p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_are_sorted_in_frame_and_deterministic() {
        let sim = ChengduSim::new(11);
        let orders = sim.orders(3000);
        assert_eq!(orders.len(), 3000);
        let frame = order_frame();
        for w in orders.windows(2) {
            assert!(w[0].release_time <= w[1].release_time);
        }
        for o in &orders {
            assert!(frame.contains(&o.pickup), "pickup {:?}", o.pickup);
            assert!(frame.contains(&o.dropoff));
            assert!((0.0..86_400.0).contains(&o.release_time));
            assert!((1..=4).contains(&o.passengers));
        }
        assert_eq!(orders, ChengduSim::new(11).orders(3000));
        assert_ne!(orders, ChengduSim::new(12).orders(3000));
    }

    #[test]
    fn taxis_live_in_the_wider_frame() {
        let sim = ChengduSim::new(11);
        let taxis = sim.taxis(2000);
        let frame = taxi_frame();
        assert!(taxis.iter().all(|t| frame.contains(&t.location)));
        assert!(taxis.iter().all(|t| t.capacity == 4));
    }

    #[test]
    fn arrival_process_has_rush_hour_peaks() {
        let sim = ChengduSim::new(42);
        let orders = sim.orders(40_000);
        let in_window = |lo_h: f64, hi_h: f64| {
            orders
                .iter()
                .filter(|o| o.release_time >= lo_h * 3600.0 && o.release_time < hi_h * 3600.0)
                .count() as f64
        };
        let morning = in_window(7.0, 10.0);
        let evening = in_window(17.0, 20.0);
        let small_hours = in_window(1.0, 4.0);
        assert!(
            morning > 2.0 * small_hours,
            "morning {morning} vs night {small_hours}"
        );
        assert!(
            evening > 2.0 * small_hours,
            "evening {evening} vs night {small_hours}"
        );
    }

    #[test]
    fn pickups_are_clustered_not_uniform() {
        // Road-network sparsity: at a 1 km grain, the simulated pickups
        // must leave clearly more cells empty than a uniform scatter of
        // the same size over the same frame.
        use crate::synthetic::uniform_in;
        use rand::{rngs::StdRng, SeedableRng};

        let frame = order_frame();
        let (cells_x, cells_y) = (120usize, 100usize); // 1 km cells
        let occupancy = |points: &[Point]| {
            let mut occupied = vec![false; cells_x * cells_y];
            for p in points {
                let cx = (((p.x - frame.min.x) / 1.0) as usize).min(cells_x - 1);
                let cy = (((p.y - frame.min.y) / 1.0) as usize).min(cells_y - 1);
                occupied[cy * cells_x + cx] = true;
            }
            occupied.iter().filter(|&&b| b).count() as f64 / occupied.len() as f64
        };

        let sim = ChengduSim::new(7);
        let pickups: Vec<Point> = sim.orders(4000).iter().map(|o| o.pickup).collect();
        let mut rng = StdRng::seed_from_u64(99);
        let uniform: Vec<Point> = (0..4000).map(|_| uniform_in(&mut rng, &frame)).collect();

        let sim_frac = occupancy(&pickups);
        let uni_frac = occupancy(&uniform);
        assert!(
            sim_frac < 0.8 * uni_frac,
            "simulated occupancy {sim_frac} not clearly below uniform {uni_frac}"
        );
    }
}
