//! The synthetic data sets of Section VII-A: 2-D uniform points in a
//! 100×100 plane, and 2-D normal points with variance 150.

use dpta_spatial::{Aabb, Point};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Side length of the uniform data set's frame (paper: "a plane with a
/// range of 100×100").
pub const UNIFORM_SIDE: f64 = 100.0;

/// Per-axis variance of the normal data set (paper: "the expectation
/// and variance for all points are 0 and 150").
pub const NORMAL_VARIANCE: f64 = 150.0;

/// Samples `n` points uniformly from the 100×100 frame.
pub fn uniform_points(seed: u64, n: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(0.0..UNIFORM_SIDE),
                rng.gen_range(0.0..UNIFORM_SIDE),
            )
        })
        .collect()
}

/// Samples `n` points from an isotropic 2-D normal with mean 0 and
/// per-axis variance 150 (Box–Muller; no external distribution crate).
pub fn normal_points(seed: u64, n: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = NORMAL_VARIANCE.sqrt();
    (0..n)
        .map(|_| {
            let (z0, z1) = box_muller(&mut rng);
            Point::new(sigma * z0, sigma * z1)
        })
        .collect()
}

/// One pair of independent standard normal deviates.
pub fn box_muller(rng: &mut impl Rng) -> (f64, f64) {
    // u1 bounded away from 0 so ln(u1) stays finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Samples a 2-D normal point with the given centre and per-axis sigma.
pub fn gaussian_around(rng: &mut impl Rng, center: Point, sigma: f64) -> Point {
    let (z0, z1) = box_muller(rng);
    Point::new(center.x + sigma * z0, center.y + sigma * z1)
}

/// Samples a point uniformly from a frame.
pub fn uniform_in(rng: &mut impl Rng, frame: &Aabb) -> Point {
    Point::new(
        rng.gen_range(frame.min.x..frame.max.x),
        rng.gen_range(frame.min.y..frame.max.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_points_stay_in_frame() {
        let pts = uniform_points(1, 5000);
        assert_eq!(pts.len(), 5000);
        let frame = Aabb::from_extents(0.0, 0.0, UNIFORM_SIDE, UNIFORM_SIDE);
        assert!(pts.iter().all(|p| frame.contains(p)));
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        // Quadrant counts should each be ~25%.
        let pts = uniform_points(2, 40_000);
        let q1 = pts.iter().filter(|p| p.x < 50.0 && p.y < 50.0).count();
        let frac = q1 as f64 / pts.len() as f64;
        assert!((frac - 0.25).abs() < 0.01, "quadrant fraction {frac}");
    }

    #[test]
    fn normal_moments_match() {
        let pts = normal_points(3, 60_000);
        let n = pts.len() as f64;
        let mean_x = pts.iter().map(|p| p.x).sum::<f64>() / n;
        let mean_y = pts.iter().map(|p| p.y).sum::<f64>() / n;
        let var_x = pts.iter().map(|p| (p.x - mean_x).powi(2)).sum::<f64>() / n;
        let var_y = pts.iter().map(|p| (p.y - mean_y).powi(2)).sum::<f64>() / n;
        assert!(mean_x.abs() < 0.3, "mean_x {mean_x}");
        assert!(mean_y.abs() < 0.3, "mean_y {mean_y}");
        assert!((var_x - NORMAL_VARIANCE).abs() < 5.0, "var_x {var_x}");
        assert!((var_y - NORMAL_VARIANCE).abs() < 5.0, "var_y {var_y}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_points(7, 100), uniform_points(7, 100));
        assert_eq!(normal_points(7, 100), normal_points(7, 100));
        assert_ne!(uniform_points(7, 100), uniform_points(8, 100));
    }

    #[test]
    fn box_muller_produces_finite_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let (a, b) = box_muller(&mut rng);
            assert!(a.is_finite() && b.is_finite());
        }
    }
}
