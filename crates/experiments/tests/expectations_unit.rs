//! Unit tests of the claim checker against hand-built figure outputs:
//! the checker must accept series shaped like the paper's plots and
//! reject inverted ones.

use dpta_core::{Measures, Method};
use dpta_experiments::expectations::{check, render};
use dpta_experiments::figures::find;
use dpta_experiments::runner::{FigureOutput, MethodResult, SweepPoint};
use dpta_workloads::Dataset;
use std::time::Duration;

/// Builds a sweep point where each method has the given (avg utility,
/// avg distance, time ms) triple with one matched pair, so the measure
/// extraction is the identity.
fn point(x: f64, rows: &[(Method, f64, f64, f64)]) -> SweepPoint {
    SweepPoint {
        x,
        results: rows
            .iter()
            .map(|&(method, utility, distance, ms)| MethodResult {
                method,
                measures: Measures {
                    matched: 1,
                    total_utility: utility,
                    total_distance: distance,
                    total_epsilon: 0.0,
                    publications: 0,
                    rounds: 1,
                },
                elapsed: Duration::from_secs_f64(ms / 1e3),
                p95_latency_s: None,
            })
            .collect(),
    }
}

/// A paper-shaped fig04 (times growing with ratio, PGT under PDCE).
fn fig04_output(invert: bool) -> FigureOutput {
    let spec = find("fig04").unwrap();
    let mk = |pgt_scale: f64| -> Vec<SweepPoint> {
        [1.0, 1.5, 2.0, 2.5, 3.0]
            .iter()
            .map(|&x| {
                let pdce_ms = 2.0 * x;
                let pgt_ms = pdce_ms * pgt_scale;
                point(
                    x,
                    &[
                        (Method::Puce, 1.0, 1.0, 2.5 * x),
                        (Method::Pdce, 1.0, 1.0, pdce_ms),
                        (Method::Pgt, 1.0, 1.0, pgt_ms),
                        (Method::Uce, 1.0, 1.0, 1.5 * x),
                        (Method::Dce, 1.0, 1.0, 1.4 * x),
                        (Method::Gt, 1.0, 1.0, 0.9 * x),
                        (Method::Grd, 1.0, 1.0, 0.2 * x),
                    ],
                )
            })
            .collect()
    };
    let scale = if invert { 2.0 } else { 0.45 };
    FigureOutput {
        id: spec.id.to_string(),
        caption: spec.caption.to_string(),
        sweeps: vec![(Dataset::Chengdu, mk(scale)), (Dataset::Normal, mk(scale))],
        tables: vec![],
    }
}

#[test]
fn paper_shaped_timing_passes() {
    let spec = find("fig04").unwrap();
    let claims = check(&spec, &fig04_output(false));
    assert_eq!(claims.len(), 4); // 2 claims x 2 datasets
    assert!(claims.iter().all(|c| c.holds), "{}", render(&claims));
    // The detail must quote the paper-style reduction band.
    assert!(claims[0].detail.contains("% cheaper"));
}

#[test]
fn inverted_timing_fails() {
    let spec = find("fig04").unwrap();
    let claims = check(&spec, &fig04_output(true));
    let faster: Vec<_> = claims
        .iter()
        .filter(|c| c.id.contains("pgt-faster"))
        .collect();
    assert_eq!(faster.len(), 2);
    assert!(faster.iter().all(|c| !c.holds));
}

/// fig07-shaped data: utilities falling with range, PGT flattest.
fn fig07_output(pgt_flat: bool) -> FigureOutput {
    let spec = find("fig07").unwrap();
    let points = [0.8, 1.1, 1.4, 1.7, 2.0]
        .iter()
        .enumerate()
        .map(|(k, &x)| {
            let k = k as f64;
            let puce = 3.0 - 0.5 * k;
            let pgt = if pgt_flat {
                2.9 - 0.1 * k
            } else {
                3.5 - 0.8 * k
            };
            point(
                x,
                &[
                    (Method::Puce, puce, 1.0, 1.0),
                    (Method::Pdce, puce - 0.02, 1.0, 1.0),
                    (Method::Pgt, pgt, 1.0, 1.0),
                    (Method::Uce, 4.0 - 0.2 * k, 1.0, 1.0),
                    (Method::Dce, 4.0 - 0.2 * k, 1.0, 1.0),
                    (Method::Gt, 4.0 - 0.15 * k, 1.0, 1.0),
                    (Method::Grd, 4.0 - 0.1 * k, 1.0, 1.0),
                ],
            )
        })
        .collect();
    FigureOutput {
        id: spec.id.to_string(),
        caption: spec.caption.to_string(),
        sweeps: vec![(Dataset::Chengdu, points)],
        tables: vec![],
    }
}

#[test]
fn paper_shaped_range_sweep_passes_and_steep_pgt_fails() {
    let spec = find("fig07").unwrap();
    let good = check(&spec, &fig07_output(true));
    assert!(good.iter().all(|c| c.holds), "{}", render(&good));

    let bad = check(&spec, &fig07_output(false));
    let slower: Vec<_> = bad
        .iter()
        .filter(|c| c.id.contains("pgt-decreases-slower"))
        .collect();
    assert_eq!(slower.len(), 1);
    assert!(!slower[0].holds);
}

#[test]
fn render_marks_pass_and_fail() {
    let spec = find("fig04").unwrap();
    let text = render(&check(&spec, &fig04_output(true)));
    assert!(text.contains("[FAIL]"));
    assert!(text.contains("[PASS]"));
    assert!(text.contains("Sec. VII-D.1"));
}
