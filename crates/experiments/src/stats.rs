//! Small summary-statistics toolkit for experiment series: means,
//! standard deviations, and the ratio summaries the paper reports
//! ("PGT is 50–63% faster", "16% utility improvement on average").

/// Mean of a sample; 0 for an empty one.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased (n−1) sample standard deviation; 0 for fewer than two
/// observations.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Median (of a copy); 0 for an empty sample.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Element-wise percentage reduction of `new` relative to `old`:
/// `(old − new) / old`, averaged over the series. This is how the
/// paper summarises "PGT costs 52–63% less time than PDCE".
///
/// Returns `(min, mean, max)` over the positions where `old > 0`.
pub fn reduction_band(old: &[f64], new: &[f64]) -> Option<(f64, f64, f64)> {
    assert_eq!(old.len(), new.len(), "series lengths must match");
    let reductions: Vec<f64> = old
        .iter()
        .zip(new)
        .filter(|(o, _)| **o > 0.0)
        .map(|(o, n)| (o - n) / o)
        .collect();
    if reductions.is_empty() {
        return None;
    }
    let lo = reductions.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = reductions.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some((lo, mean(&reductions), hi))
}

/// Mean relative improvement of `new` over `old`: `(new − old) / old`,
/// the paper's "improve 16% utility on average" summary. Positions with
/// non-positive `old` are skipped.
pub fn improvement_mean(old: &[f64], new: &[f64]) -> Option<f64> {
    assert_eq!(old.len(), new.len(), "series lengths must match");
    let imps: Vec<f64> = old
        .iter()
        .zip(new)
        .filter(|(o, _)| **o > 0.0)
        .map(|(o, n)| (n - o) / o)
        .collect();
    (!imps.is_empty()).then(|| mean(&imps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        // Sample std of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.1380899353).abs() < 1e-9);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn reduction_band_matches_paper_summary_style() {
        // PDCE times 2.0, 4.0; PGT times 1.0, 1.6 => reductions 50%, 60%.
        let (lo, m, hi) = reduction_band(&[2.0, 4.0], &[1.0, 1.6]).unwrap();
        assert!((lo - 0.5).abs() < 1e-12);
        assert!((hi - 0.6).abs() < 1e-12);
        assert!((m - 0.55).abs() < 1e-12);
        assert!(reduction_band(&[0.0], &[1.0]).is_none());
    }

    #[test]
    fn improvement_mean_skips_nonpositive_baselines() {
        let imp = improvement_mean(&[2.0, 0.0, 4.0], &[2.4, 9.9, 4.4]).unwrap();
        // (0.2 + 0.1) / 2 = 0.15.
        assert!((imp - 0.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_series_panic() {
        let _ = reduction_band(&[1.0], &[1.0, 2.0]);
    }
}
