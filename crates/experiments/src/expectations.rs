//! The paper's qualitative claims about each figure, as checkable
//! predicates over a [`FigureOutput`].
//!
//! Absolute numbers are not comparable across testbeds (the paper ran
//! Java on a Xeon Silver; we run Rust on whatever executes the tests),
//! but the *shapes* — who wins, what grows, where gaps close — are the
//! reproduction target. Each claim cites the paper sentence it encodes.

use crate::figures::{FigureSpec, MeasureKind, Sweep};
use crate::runner::{measure_value, FigureOutput, SweepPoint};
use crate::stats::reduction_band;
use dpta_core::Method;

/// One verified (or falsified) paper claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Short identifier, e.g. `pgt-faster-than-pdce`.
    pub id: String,
    /// What the paper says.
    pub description: String,
    /// Whether our measurements agree.
    pub holds: bool,
    /// The numbers behind the verdict.
    pub detail: String,
}

impl Claim {
    fn new(id: &str, description: &str, holds: bool, detail: String) -> Self {
        Claim {
            id: id.to_string(),
            description: description.to_string(),
            holds,
            detail,
        }
    }
}

fn series(points: &[SweepPoint], method: Method, mk: MeasureKind) -> Vec<f64> {
    points
        .iter()
        .map(|p| measure_value(p, method, mk))
        .collect()
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Checks every claim the paper makes about this figure. Returns an
/// empty vector for figures the paper draws no explicit conclusion
/// about.
pub fn check(spec: &FigureSpec, fig: &FigureOutput) -> Vec<Claim> {
    let mut claims = Vec::new();
    for (dataset, points) in &fig.sweeps {
        let ds = dataset.name();
        if let (Sweep::WorkerRatio, Some(MeasureKind::TimeMs)) = (spec.sweep, spec.measures.first())
        {
            {
                let pgt = series(points, Method::Pgt, MeasureKind::TimeMs);
                let pdce = series(points, Method::Pdce, MeasureKind::TimeMs);
                let band = reduction_band(&pdce, &pgt);
                claims.push(Claim::new(
                    &format!("{}-{ds}-pgt-faster-than-pdce", fig.id),
                    "PGT costs 50–63% less time than PDCE (Sec. VII-D.1)",
                    mean(&pgt) < mean(&pdce),
                    match band {
                        Some((lo, _, hi)) => format!(
                            "PGT {:.0}–{:.0}% cheaper (paper: 50–63%); means {:.2} vs {:.2} ms",
                            lo * 100.0,
                            hi * 100.0,
                            mean(&pgt),
                            mean(&pdce)
                        ),
                        None => "no positive PDCE timings".to_string(),
                    },
                ));
                claims.push(Claim::new(
                    &format!("{}-{ds}-time-grows-with-ratio", fig.id),
                    "time cost increases with the worker ratio (Sec. VII-D.1)",
                    pdce.last() > pdce.first(),
                    format!(
                        "PDCE time {:.1} ms -> {:.1} ms",
                        pdce[0],
                        pdce[pdce.len() - 1]
                    ),
                ));
            }
        }

        if spec.measures.contains(&MeasureKind::AvgUtility) {
            match spec.sweep {
                // Figures 5/6/19 — utility vs task value.
                Sweep::TaskValue => {
                    for m in [Method::Puce, Method::Pdce, Method::Pgt] {
                        let s = series(points, m, MeasureKind::AvgUtility);
                        // "the utility increases approximately linear with
                        // the task value". The lowest value (1.5) barely
                        // clears the privacy cost and matches almost
                        // nothing, so the trend is asserted from the
                        // second point on, plus overall growth.
                        let tail_monotone = s[1..].windows(2).all(|w| w[1] >= w[0] - 0.05);
                        let grows = s[s.len() - 1] > s[0];
                        claims.push(Claim::new(
                            &format!("{}-{ds}-{}-utility-grows-with-value", fig.id, m.name()),
                            "utility increases approximately linearly with the task value",
                            tail_monotone && grows,
                            format!("{} series {:?}", m.name(), rounded(&s)),
                        ));
                    }
                    let rd_first = measure_value(&points[0], Method::Puce, MeasureKind::RdUtility);
                    let rd_last = measure_value(
                        &points[points.len() - 1],
                        Method::Puce,
                        MeasureKind::RdUtility,
                    );
                    claims.push(Claim::new(
                        &format!("{}-{ds}-rd-utility-decreases", fig.id),
                        "the relative deviation of utility decreases as the task value grows",
                        rd_last <= rd_first,
                        format!("PUCE U_RD {rd_first:.3} -> {rd_last:.3}"),
                    ));
                }
                // Figures 7/8/20 — utility vs worker range.
                Sweep::WorkerRange => {
                    let puce = series(points, Method::Puce, MeasureKind::AvgUtility);
                    let pgt = series(points, Method::Pgt, MeasureKind::AvgUtility);
                    claims.push(Claim::new(
                        &format!("{}-{ds}-utility-falls-with-range", fig.id),
                        "average utility decreases when the worker range increases (CE family)",
                        puce[puce.len() - 1] <= puce[0],
                        format!("PUCE {:?}", rounded(&puce)),
                    ));
                    let puce_drop = puce[0] - puce[puce.len() - 1];
                    let pgt_drop = pgt[0] - pgt[pgt.len() - 1];
                    claims.push(Claim::new(
                        &format!("{}-{ds}-pgt-decreases-slower", fig.id),
                        "PGT's utility decreases slower than PUCE/PDCE as the range grows",
                        pgt_drop <= puce_drop,
                        format!("drop PGT {pgt_drop:.3} vs PUCE {puce_drop:.3}"),
                    ));
                }
                // Figures 9/10/21 — utility vs worker ratio.
                Sweep::WorkerRatio => {
                    let puce = mean(&series(points, Method::Puce, MeasureKind::AvgUtility));
                    let pdce = mean(&series(points, Method::Pdce, MeasureKind::AvgUtility));
                    claims.push(Claim::new(
                        &format!("{}-{ds}-puce-beats-pdce", fig.id),
                        "PUCE always keeps a higher average utility than PDCE (Sec. VII-D.2)",
                        puce >= pdce,
                        format!("mean U_AVG PUCE {puce:.3} vs PDCE {pdce:.3}"),
                    ));
                }
                // figs1 — the streaming window-width sweep. Not a paper
                // figure: these pin the online pipeline's batching
                // trade-off so `--verify` covers streaming behaviour.
                Sweep::WindowWidth => {
                    for m in [Method::Puce, Method::Pgt, Method::Grd] {
                        let p95 = series(points, m, MeasureKind::P95LatencyS);
                        claims.push(Claim::new(
                            &format!("{}-{ds}-{}-latency-grows-with-width", fig.id, m.name()),
                            "p95 matched latency grows with the window width \
                             (wider batches hold arrivals longer)",
                            p95[p95.len() - 1] > p95[0],
                            format!("{} p95 {:?}", m.name(), rounded(&p95)),
                        ));
                    }
                    let grd = series(points, Method::Grd, MeasureKind::AvgUtility);
                    claims.push(Claim::new(
                        &format!("{}-{ds}-plain-utility-width-insensitive", fig.id),
                        "the non-private baseline's per-match utility is \
                         width-insensitive (batching changes when, not what, it matches)",
                        (grd[grd.len() - 1] - grd[0]).abs() <= 0.1 * grd[0].abs(),
                        format!("GRD U_AVG {:?}", rounded(&grd)),
                    ));
                    let puce = series(points, Method::Puce, MeasureKind::AvgUtility);
                    claims.push(Claim::new(
                        &format!("{}-{ds}-private-utility-not-improved-by-width", fig.id),
                        "wider windows do not raise the private CE engine's per-match \
                         utility (privacy spend accumulates with batch size), so \
                         narrow windows win on latency at no private-utility cost",
                        puce[0] + 1e-9 >= puce[puce.len() - 1],
                        format!("PUCE U_AVG {:?}", rounded(&puce)),
                    ));
                }
                // Figure 17/25 — PPCF ablation.
                Sweep::PrivacyBudget => {
                    for (with, without) in [
                        (Method::Puce, Method::PuceNppcf),
                        (Method::Pdce, Method::PdceNppcf),
                    ] {
                        let a = series(points, with, MeasureKind::AvgUtility);
                        let b = series(points, without, MeasureKind::AvgUtility);
                        // "solutions with PPCF are better ... when the
                        // privacy budget is small": compare the two
                        // smallest budget groups.
                        let low_gap = (a[0] - b[0]) + (a[1] - b[1]);
                        claims.push(Claim::new(
                            &format!("{}-{ds}-{}-ppcf-helps-at-low-budget", fig.id, with.name()),
                            "PPCF beats non-PPCF when the privacy budget is small (Sec. VII-D.4)",
                            low_gap >= 0.0,
                            format!(
                                "{} vs {}: low-budget gap {low_gap:.3}",
                                with.name(),
                                without.name()
                            ),
                        ));
                        // "as the privacy budget increases, the difference
                        // ... is eliminated". Checked for PUCE only: PDCE
                        // has no utility gate, so in our reproduction each
                        // wasted non-PPCF proposal costs ε itself and the
                        // absolute gap *grows* with the budget (see
                        // EXPERIMENTS.md for the analysis).
                        if with == Method::Puce {
                            let high_gap = (a[a.len() - 1] - b[b.len() - 1]).abs();
                            claims.push(Claim::new(
                                &format!("{}-{ds}-{}-gap-shrinks", fig.id, with.name()),
                                "the PPCF / non-PPCF gap shrinks as the budget grows",
                                high_gap <= (a[0] - b[0]).abs() + 0.05,
                                format!("gap at low {:.3}, at high {high_gap:.3}", a[0] - b[0]),
                            ));
                        }
                    }
                    let puce = series(points, Method::Puce, MeasureKind::AvgUtility);
                    claims.push(Claim::new(
                        &format!("{}-{ds}-utility-falls-with-budget", fig.id),
                        "average utility decreases as the privacy budget grows (cost dominates)",
                        puce[puce.len() - 1] <= puce[0],
                        format!("PUCE {:?}", rounded(&puce)),
                    ));
                }
            }
        }

        if spec.measures.contains(&MeasureKind::AvgDistance) {
            // "PDCE is better than PUCE and PGT in most cases". On the
            // task-value sweep the paper itself carves out the small
            // values ("workers will not choose many tasks in their range
            // when the task value is minimal, leading to a small average
            // distance"), so the comparison starts at the default value
            // 4.5 there and covers the whole sweep elsewhere.
            let puce_s = series(points, Method::Puce, MeasureKind::AvgDistance);
            let pdce_s = series(points, Method::Pdce, MeasureKind::AvgDistance);
            let from = if spec.sweep == Sweep::TaskValue { 2 } else { 0 };
            let puce = mean(&puce_s[from..]);
            let pdce = mean(&pdce_s[from..]);
            claims.push(Claim::new(
                &format!("{}-{ds}-pdce-minimises-distance", fig.id),
                "PDCE travels less than PUCE/PGT in most cases (Sec. VII-D.3)",
                pdce <= puce + 0.02,
                format!("mean D_AVG PDCE {pdce:.3} vs PUCE {puce:.3}"),
            ));
            match spec.sweep {
                Sweep::WorkerRange => {
                    claims.push(Claim::new(
                        &format!("{}-{ds}-distance-grows-with-range", fig.id),
                        "the average distance increases when the worker range increases",
                        puce_s[puce_s.len() - 1] >= puce_s[0],
                        format!("PUCE D_AVG {:?}", rounded(&puce_s)),
                    ));
                }
                Sweep::TaskValue => {
                    // "task values do not affect the average distance when
                    // the task value is larger than 3".
                    let tail = &puce_s[2..];
                    let flat = tail
                        .iter()
                        .all(|&v| (v - tail[0]).abs() <= 0.05 * tail[0].abs().max(0.1));
                    claims.push(Claim::new(
                        &format!("{}-{ds}-distance-flat-at-high-value", fig.id),
                        "task values above 3 do not affect the average distance",
                        flat,
                        format!("PUCE D_AVG tail {:?}", rounded(tail)),
                    ));
                }
                _ => {}
            }
        }
    }
    claims
}

fn rounded(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}

/// Renders claims as a ✓/✗ report.
pub fn render(claims: &[Claim]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for c in claims {
        let mark = if c.holds { "PASS" } else { "FAIL" };
        let _ = writeln!(out, "[{mark}] {} — {} ({})", c.id, c.description, c.detail);
    }
    out
}
