//! Experiment harness regenerating every table and figure of the
//! paper's evaluation (Section VII).
//!
//! * [`figures`] — the registry mapping each paper figure (4–17 and the
//!   appendix's 18–25) to a parameter sweep over Table X;
//! * [`runner`] — executes a scenario × method grid over batches,
//!   timing each method (Figure 4's measure) and aggregating the
//!   Section VII-C measures;
//! * [`report`] — ASCII tables mirroring the paper's series plus JSON
//!   export;
//! * [`expectations`] — the qualitative "shape" claims the paper makes
//!   about each figure, as checkable predicates (used by integration
//!   tests and EXPERIMENTS.md);
//! * [`stream_cmd`] — the `stream` subcommand driving the online
//!   (`dpta-stream`) pipeline end-to-end, including the sharded-vs-
//!   unsharded equivalence witness.
//!
//! Run `cargo run -p dpta-experiments --release -- --list` to see every
//! experiment id.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod expectations;
pub mod figures;
pub mod report;
pub mod runner;
pub mod stats;
pub mod stream_cmd;

pub use figures::{registry, FigureSpec, MeasureKind, MethodSet, Sweep};
pub use runner::{run_figure, FigureOutput, MethodResult, RunOptions, SweepPoint, Table};
