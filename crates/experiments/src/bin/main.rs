//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! dpta-experiments --list
//! dpta-experiments --figure fig07 --scale 0.3
//! dpta-experiments --all --scale 0.1 --out results/ --verify
//! ```

use dpta_core::RunParams;
use dpta_experiments::{expectations, figures, report, runner};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    figures: Vec<String>,
    all: bool,
    list: bool,
    scale: f64,
    batches: usize,
    seeds: usize,
    seed: u64,
    out: Option<PathBuf>,
    sequential: bool,
    verify: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        figures: Vec::new(),
        all: false,
        list: false,
        scale: 0.25,
        batches: 2,
        seeds: 1,
        seed: 42,
        out: None,
        sequential: false,
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--figure" | "-f" => args.figures.push(next("--figure")?),
            "--all" => args.all = true,
            "--list" | "-l" => args.list = true,
            "--scale" => {
                args.scale = next("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--batches" => {
                args.batches = next("--batches")?
                    .parse()
                    .map_err(|e| format!("bad --batches: {e}"))?
            }
            "--seeds" => {
                args.seeds = next("--seeds")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?
            }
            "--seed" => {
                args.seed = next("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--out" | "-o" => args.out = Some(PathBuf::from(next("--out")?)),
            "--sequential" => args.sequential = true,
            "--verify" => args.verify = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn print_help() {
    println!(
        "dpta-experiments — regenerate the paper's tables and figures

USAGE:
  dpta-experiments [--figure figNN]... [--all] [options]

OPTIONS:
  -f, --figure <id>   run one experiment (repeatable); see --list
      --all           run every experiment in the registry
  -l, --list          list experiment ids and captions
      --scale <f>     batch-size scale; 1.0 = the paper's 1000-task
                      batches (default 0.25)
      --batches <n>   batches per sweep point (default 2)
      --seeds <n>     noise-seed replications per point (default 1)
      --seed <n>      master seed (default 42)
  -o, --out <dir>     write <id>.json and <id>.txt under <dir>
      --sequential    disable batch-level parallelism
      --verify        check the paper's qualitative claims and exit
                      non-zero if any fails"
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_help();
            return ExitCode::from(2);
        }
    };

    let registry = figures::registry();
    if args.list {
        for spec in &registry {
            println!(
                "{}  [{}]  {}",
                spec.id,
                spec.datasets
                    .iter()
                    .map(|d| d.name())
                    .collect::<Vec<_>>()
                    .join(", "),
                spec.caption
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<_> = if args.all {
        registry
    } else if args.figures.is_empty() {
        eprintln!("error: pass --figure <id>, --all or --list\n");
        print_help();
        return ExitCode::from(2);
    } else {
        let mut specs = Vec::new();
        for id in &args.figures {
            match figures::find(id) {
                Some(s) => specs.push(s),
                None => {
                    eprintln!("error: unknown figure id {id} (try --list)");
                    return ExitCode::from(2);
                }
            }
        }
        specs
    };

    let opts = runner::RunOptions {
        scale: args.scale,
        n_batches: args.batches,
        params: RunParams::with_seed(args.seed),
        n_seeds: args.seeds,
        parallel: !args.sequential,
    };

    let mut all_hold = true;
    for spec in &selected {
        eprintln!(
            "running {} ({} x {} tasks/batch x {} batches)...",
            spec.id,
            spec.sweep.axis(),
            opts.batch_size(),
            opts.n_batches
        );
        let out = runner::run_figure(spec, &opts);
        print!("{}", report::render_figure(&out));
        if args.verify {
            let claims = expectations::check(spec, &out);
            print!("{}", expectations::render(&claims));
            println!();
            all_hold &= claims.iter().all(|c| c.holds);
        }
        if let Some(dir) = &args.out {
            match report::write_json(&out, dir) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => {
                    eprintln!("error writing results: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if args.verify && !all_hold {
        eprintln!("some paper claims did not hold at this scale/seed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
