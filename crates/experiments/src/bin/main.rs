//! CLI for regenerating the paper's tables and figures, plus the
//! online `stream` mode.
//!
//! ```text
//! dpta-experiments --list
//! dpta-experiments --figure fig07 --scale 0.3
//! dpta-experiments --all --scale 0.1 --out results/ --verify
//! dpta-experiments stream --methods PUCE,PGT,GRD --window-secs 600
//! ```

use dpta_core::{Method, RunParams};
use dpta_experiments::{expectations, figures, report, runner, stream_cmd};
use dpta_stream::WindowPolicy;
use dpta_workloads::Dataset;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    figures: Vec<String>,
    all: bool,
    list: bool,
    scale: f64,
    batches: usize,
    seeds: usize,
    seed: u64,
    out: Option<PathBuf>,
    sequential: bool,
    verify: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        figures: Vec::new(),
        all: false,
        list: false,
        scale: 0.25,
        batches: 2,
        seeds: 1,
        seed: 42,
        out: None,
        sequential: false,
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--figure" | "-f" => args.figures.push(next("--figure")?),
            "--all" => args.all = true,
            "--list" | "-l" => args.list = true,
            "--scale" => {
                args.scale = next("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--batches" => {
                args.batches = next("--batches")?
                    .parse()
                    .map_err(|e| format!("bad --batches: {e}"))?
            }
            "--seeds" => {
                args.seeds = next("--seeds")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?
            }
            "--seed" => {
                args.seed = next("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--out" | "-o" => args.out = Some(PathBuf::from(next("--out")?)),
            "--sequential" => args.sequential = true,
            "--verify" => args.verify = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn print_help() {
    println!(
        "dpta-experiments — regenerate the paper's tables and figures

USAGE:
  dpta-experiments [--figure figNN]... [--all] [options]
  dpta-experiments stream [stream options]

OPTIONS:
  -f, --figure <id>   run one experiment (repeatable); see --list
      --all           run every experiment in the registry
  -l, --list          list experiment ids and captions
      --scale <f>     batch-size scale; 1.0 = the paper's 1000-task
                      batches (default 0.25)
      --batches <n>   batches per sweep point (default 2)
      --seeds <n>     noise-seed replications per point (default 1)
      --seed <n>      master seed (default 42)
  -o, --out <dir>     write <id>.json and <id>.txt under <dir>
      --sequential    disable batch-level parallelism
      --verify        check the paper's qualitative claims and exit
                      non-zero if any fails

STREAM OPTIONS (dpta-experiments stream ...):
      --methods <a,b>      comma-separated method names
                           (default PUCE,PGT,GRD)
      --dataset <name>     chengdu | normal | uniform (default normal)
      --scale <f>          batch-size scale (default 0.1)
      --batches <n>        scenario batches streamed (default 2)
      --window-secs <f>    time-window width (default 600)
      --window-tasks <n>   count-threshold windows instead of time
      --ttl <n>            task time-to-live in windows (default 3)
      --capacity <f>       lifetime worker budget epsilon
                           (default infinite)
      --shards <CxR>       shard grid for the equivalence check
                           (default 2x2)
      --seed <n>           master seed (default 42)
      --halo               also run the boundary-halo analysis: a
                           bit-for-bit determinism gate against the
                           unsharded run on the disjoint witness, and
                           a recovered-utility report (halo vs
                           drop-pairs sharding) on a boundary-crossing
                           stream
      --adaptive           also run the adaptive-windowing comparison:
                           the latency-targeting controller vs a
                           3-point static width sweep on a bursty
                           arrival stream, reporting p95/mean latency,
                           utility and early/widened/narrowed window
                           counts; gated on adaptive strictly beating
                           the best static p95 at utility within 5 %
      --reentry            also run the worker re-entry comparison:
                           serve-and-leave (ServiceModel::Never) vs a
                           fixed service duration on a worker-scarce
                           stream, with per-cycle utilization columns;
                           gated on re-entry strictly raising fleet
                           utilization (matches per worker arrival)
      --resume             also run the durable-session smoke: snapshot
                           each method's session mid-stream, serialize
                           through JSON, restore and drain; gated on
                           the resumed run matching the uninterrupted
                           run bit for bit (fates, window cuts, spend
                           and the typed outcome log)
      --pacing             also run the budget-economics comparison:
                           lifetime accounting vs a sliding-window
                           ledger with the pacing controller on, on a
                           long-horizon worker-scarce stream under a
                           tight capacity; gated on the windowed ledger
                           sustaining strictly higher steady-state
                           matches per worker for every budget-spending
                           method
      --scale-sweep        also run the entity-scale sweep smoke: drain
                           the constant-density sweep stream at 10^3
                           and 10^4 entities and gate the fitted
                           growth exponent at sub-quadratic (n^1.8) —
                           the quick CI counterpart of `bench_gate
                           --scale-sweep`
      --strict             escalate pipeline warnings to hard errors
                           (e.g. the count-window shard coercion)
  Exits non-zero if the sharded run does not match the unsharded run
  exactly on the shard-disjoint witness stream, or (with --halo) if
  the halo run diverges or fails to beat drop-pairs sharding, or
  (with --adaptive) if the adaptive gate fails, or (with --reentry)
  if the utilization gate fails, or (with --resume) if the restored
  session diverges, or (with --pacing) if the windowed ledger fails to
  beat lifetime accounting, or (with --scale-sweep) if drain time grows
  super-linearly in entity count, or (with --strict) if any warning
  fired."
    );
}

fn parse_stream_args(mut it: std::env::Args) -> Result<stream_cmd::StreamArgs, String> {
    let mut args = stream_cmd::StreamArgs::default();
    while let Some(a) = it.next() {
        let mut next = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--methods" => {
                let list = next("--methods")?;
                args.methods = list
                    .split(',')
                    .map(|name| {
                        Method::all()
                            .into_iter()
                            .find(|m| m.name().eq_ignore_ascii_case(name.trim()))
                            .ok_or_else(|| format!("unknown method: {name}"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.methods.is_empty() {
                    return Err("--methods needs at least one name".into());
                }
            }
            "--dataset" => {
                let name = next("--dataset")?;
                args.dataset = Dataset::all()
                    .into_iter()
                    .find(|d| d.name().eq_ignore_ascii_case(name.trim()))
                    .ok_or_else(|| format!("unknown dataset: {name}"))?;
            }
            "--scale" => {
                args.scale = next("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if !(args.scale > 0.0 && args.scale.is_finite()) {
                    return Err(format!("--scale must be positive, got {}", args.scale));
                }
            }
            "--batches" => {
                args.batches = next("--batches")?
                    .parse()
                    .map_err(|e| format!("bad --batches: {e}"))?;
                if args.batches == 0 {
                    return Err("--batches must be at least 1".into());
                }
            }
            "--window-secs" => {
                let width: f64 = next("--window-secs")?
                    .parse()
                    .map_err(|e| format!("bad --window-secs: {e}"))?;
                if !(width > 0.0 && width.is_finite()) {
                    return Err(format!("--window-secs must be positive, got {width}"));
                }
                args.policy = WindowPolicy::ByTime { width };
            }
            "--window-tasks" => {
                let tasks = next("--window-tasks")?
                    .parse()
                    .map_err(|e| format!("bad --window-tasks: {e}"))?;
                if tasks == 0 {
                    return Err("--window-tasks must be at least 1".into());
                }
                args.policy = WindowPolicy::ByCount { tasks };
            }
            "--ttl" => {
                args.ttl = next("--ttl")?
                    .parse()
                    .map_err(|e| format!("bad --ttl: {e}"))?;
                if args.ttl == 0 {
                    return Err("--ttl must be at least 1".into());
                }
            }
            "--capacity" => {
                args.capacity = next("--capacity")?
                    .parse()
                    .map_err(|e| format!("bad --capacity: {e}"))?;
                if args.capacity <= 0.0 || args.capacity.is_nan() {
                    return Err(format!(
                        "--capacity must be positive, got {}",
                        args.capacity
                    ));
                }
            }
            "--shards" => {
                let spec = next("--shards")?;
                let (c, r) = spec
                    .split_once(['x', 'X'])
                    .ok_or_else(|| format!("--shards wants CxR, got {spec}"))?;
                args.shards = (
                    c.parse().map_err(|e| format!("bad --shards: {e}"))?,
                    r.parse().map_err(|e| format!("bad --shards: {e}"))?,
                );
                if args.shards.0 == 0 || args.shards.1 == 0 {
                    return Err("--shards dimensions must be at least 1".into());
                }
            }
            "--seed" => {
                args.seed = next("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--halo" => args.halo = true,
            "--adaptive" => args.adaptive = true,
            "--reentry" => args.reentry = true,
            "--resume" => args.resume = true,
            "--pacing" => args.pacing = true,
            "--scale-sweep" => args.scale_sweep = true,
            "--strict" => args.strict = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown stream argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let mut raw = std::env::args();
    raw.next(); // program name
    if raw.next().as_deref() == Some("stream") {
        return match parse_stream_args(raw) {
            Ok(args) => {
                if stream_cmd::run(&args) {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("sharded run diverged from unsharded run");
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: {e}\n");
                print_help();
                ExitCode::from(2)
            }
        };
    }

    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_help();
            return ExitCode::from(2);
        }
    };

    let registry = figures::registry();
    if args.list {
        for spec in &registry {
            println!(
                "{}  [{}]  {}",
                spec.id,
                spec.datasets
                    .iter()
                    .map(|d| d.name())
                    .collect::<Vec<_>>()
                    .join(", "),
                spec.caption
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<_> = if args.all {
        registry
    } else if args.figures.is_empty() {
        eprintln!("error: pass --figure <id>, --all or --list\n");
        print_help();
        return ExitCode::from(2);
    } else {
        let mut specs = Vec::new();
        for id in &args.figures {
            match figures::find(id) {
                Some(s) => specs.push(s),
                None => {
                    eprintln!("error: unknown figure id {id} (try --list)");
                    return ExitCode::from(2);
                }
            }
        }
        specs
    };

    let opts = runner::RunOptions {
        scale: args.scale,
        n_batches: args.batches,
        params: RunParams::with_seed(args.seed),
        n_seeds: args.seeds,
        parallel: !args.sequential,
    };

    let mut all_hold = true;
    for spec in &selected {
        eprintln!(
            "running {} ({} x {} tasks/batch x {} batches)...",
            spec.id,
            spec.sweep.axis(),
            opts.batch_size(),
            opts.n_batches
        );
        let out = runner::run_figure(spec, &opts);
        print!("{}", report::render_figure(&out));
        if args.verify {
            let claims = expectations::check(spec, &out);
            print!("{}", expectations::render(&claims));
            println!();
            all_hold &= claims.iter().all(|c| c.holds);
        }
        if let Some(dir) = &args.out {
            match report::write_json(&out, dir) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => {
                    eprintln!("error writing results: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if args.verify && !all_hold {
        eprintln!("some paper claims did not hold at this scale/seed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
