//! The `stream` subcommand: drives the online pipeline end-to-end.
//!
//! Runs each requested method over one multi-window arrival stream
//! generated from a Table X scenario (per-window and cumulative
//! utility/latency reporting), then replays a shard-disjoint clustered
//! stream both unsharded and sharded by a spatial grid, checking that
//! the two agree exactly — the correctness witness of the sharded
//! execution mode.

use dpta_core::{Method, Task, Worker};
use dpta_spatial::{Aabb, GridPartition, Point};
use dpta_stream::{
    run_sharded, ArrivalEvent, ArrivalModel, ArrivalStream, StreamConfig, StreamDriver,
    StreamScenario, TaskArrival, WindowPolicy, WorkerArrival,
};
use dpta_workloads::{Dataset, Scenario};

/// Options of the `stream` subcommand.
#[derive(Debug, Clone)]
pub struct StreamArgs {
    /// Methods to drive (default: PUCE, PGT, GRD).
    pub methods: Vec<Method>,
    /// Dataset feeding the scenario stream.
    pub dataset: Dataset,
    /// Batch-size scale relative to the paper's 1000-task batches.
    pub scale: f64,
    /// Scenario batches flattened into the stream.
    pub batches: usize,
    /// Window policy.
    pub policy: WindowPolicy,
    /// Master seed.
    pub seed: u64,
    /// Task time-to-live in windows.
    pub ttl: usize,
    /// Lifetime worker budget capacity (ε).
    pub capacity: f64,
    /// Shard grid (cols, rows) for the equivalence check.
    pub shards: (usize, usize),
}

impl Default for StreamArgs {
    fn default() -> Self {
        StreamArgs {
            methods: vec![Method::Puce, Method::Pgt, Method::Grd],
            dataset: Dataset::Normal,
            scale: 0.1,
            batches: 2,
            policy: WindowPolicy::ByTime { width: 600.0 },
            seed: 42,
            ttl: 3,
            capacity: f64::INFINITY,
            shards: (2, 2),
        }
    }
}

impl StreamArgs {
    /// The driver configuration: CLI knobs layered over the scenario's
    /// seed and budget settings (see [`StreamConfig::for_scenario`]).
    fn config(&self, scenario: &Scenario) -> StreamConfig {
        StreamConfig {
            policy: self.policy,
            task_ttl: self.ttl,
            worker_capacity: self.capacity,
            ..StreamConfig::for_scenario(scenario)
        }
    }
}

/// A shard-disjoint clustered stream: one cluster per cell of `part`,
/// worker discs interior to their cells, bursty task arrivals. Sharded
/// and unsharded execution must agree exactly on it.
fn disjoint_stream(part: &GridPartition, per_cell: usize, seed: u64) -> ArrivalStream {
    let frame = part.frame();
    let cell_w = frame.width() / part.cols() as f64;
    let cell_h = frame.height() / part.rows() as f64;
    let times = ArrivalModel::Bursty {
        base_rate: 0.02,
        burst_rate: 0.2,
        period: 900.0,
        burst_fraction: 0.3,
    }
    .times(seed, per_cell * part.n_shards());
    let mut events = Vec::new();
    let (mut task_id, mut worker_id) = (0u32, 0u32);
    for cy in 0..part.rows() {
        for cx in 0..part.cols() {
            let centre = Point::new(
                frame.min.x + (cx as f64 + 0.5) * cell_w,
                frame.min.y + (cy as f64 + 0.5) * cell_h,
            );
            let radius = 0.2 * cell_w.min(cell_h);
            let n_workers = per_cell.div_ceil(2).max(1);
            for k in 0..n_workers {
                let spread = 0.12 * cell_w.min(cell_h);
                let angle = k as f64 * 2.4;
                events.push(ArrivalEvent::Worker(WorkerArrival {
                    id: worker_id,
                    time: 0.0,
                    worker: Worker::new(
                        Point::new(
                            centre.x + spread * angle.cos(),
                            centre.y + spread * angle.sin(),
                        ),
                        radius,
                    ),
                }));
                worker_id += 1;
            }
            for k in 0..per_cell {
                let spread = 0.1 * cell_w.min(cell_h);
                let angle = k as f64 * 1.7 + 0.3;
                events.push(ArrivalEvent::Task(TaskArrival {
                    id: task_id,
                    time: times[task_id as usize],
                    task: Task::new(
                        Point::new(
                            centre.x + spread * angle.cos(),
                            centre.y + spread * angle.sin(),
                        ),
                        4.5,
                    ),
                }));
                task_id += 1;
            }
        }
    }
    ArrivalStream::new(events)
}

/// Runs the subcommand. Returns `false` if the sharded/unsharded
/// equivalence check failed (the caller turns that into a non-zero
/// exit).
pub fn run(args: &StreamArgs) -> bool {
    let scenario = Scenario {
        dataset: args.dataset,
        batch_size: ((1000.0 * args.scale).round() as usize).max(20),
        n_batches: args.batches,
        seed: args.seed,
        ..Scenario::default()
    };
    let cfg = args.config(&scenario);
    let stream = StreamScenario::new(scenario).stream();
    println!(
        "arrival stream: {} tasks, {} workers over {:.0} s ({} dataset, scale {})\n",
        stream.n_tasks(),
        stream.n_workers(),
        stream.horizon(),
        args.dataset,
        args.scale,
    );

    for &method in &args.methods {
        let engine = method.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
        report.assert_conservation();
        println!("{}", report.render());
    }

    // Sharded-vs-unsharded witness on shard-disjoint input. Exactness
    // needs aligned window boundaries, so the witness always runs under
    // a time policy (count windows close on shard-local arrivals and
    // cannot line up across shards).
    let cfg = match cfg.policy {
        WindowPolicy::ByTime { .. } => cfg,
        WindowPolicy::ByCount { .. } => {
            println!(
                "(shard check uses 600 s time windows: count windows cannot \
                 align across shards)"
            );
            StreamConfig {
                policy: WindowPolicy::ByTime { width: 600.0 },
                ..cfg
            }
        }
    };
    let (cols, rows) = args.shards;
    let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), cols, rows);
    let per_cell = (stream.n_tasks() / part.n_shards()).clamp(10, 200);
    let disjoint = disjoint_stream(&part, per_cell, args.seed);
    assert!(disjoint.is_shard_disjoint(&part));
    println!(
        "shard check: {} tasks, {} workers across a {}×{} grid",
        disjoint.n_tasks(),
        disjoint.n_workers(),
        cols,
        rows
    );
    let mut all_match = true;
    for &method in &args.methods {
        let engine = method.engine(&cfg.params);
        let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&disjoint);
        let sharded = run_sharded(engine.as_ref(), &disjoint, &cfg, &part);
        let agree = sharded.matched() == flat.matched()
            && (sharded.total_utility() - flat.total_utility()).abs() < 1e-9;
        all_match &= agree;
        println!(
            "  {:<10} unsharded {:>4} matched (utility {:>10.2}) | sharded {:>4} \
             (utility {:>10.2}) | {} · critical path {:.2} ms vs flat {:.2} ms",
            method.name(),
            flat.matched(),
            flat.total_utility(),
            sharded.matched(),
            sharded.total_utility(),
            if agree { "EXACT" } else { "MISMATCH" },
            sharded.critical_path().as_secs_f64() * 1e3,
            flat.drive_time().as_secs_f64() * 1e3,
        );
    }
    all_match
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_generator_is_disjoint_and_deterministic() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 3, 2);
        let a = disjoint_stream(&part, 12, 7);
        assert!(a.is_shard_disjoint(&part));
        assert_eq!(a.n_tasks(), 72);
        assert_eq!(a, disjoint_stream(&part, 12, 7));
    }

    #[test]
    fn subcommand_runs_three_methods_and_shard_check_passes() {
        let args = StreamArgs {
            scale: 0.03, // 30-task batches: fast but multi-window
            policy: WindowPolicy::ByTime { width: 120.0 },
            ..StreamArgs::default()
        };
        assert!(args.methods.len() >= 3);
        assert!(run(&args), "sharded run must match unsharded exactly");
    }

    #[test]
    fn count_policy_still_passes_the_shard_gate() {
        // The witness check coerces to a time policy: count windows
        // cannot align across shards, and that must not fail the gate.
        let args = StreamArgs {
            scale: 0.03,
            policy: WindowPolicy::ByCount { tasks: 20 },
            methods: vec![Method::Grd],
            ..StreamArgs::default()
        };
        assert!(run(&args));
    }
}
