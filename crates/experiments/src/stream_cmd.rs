//! The `stream` subcommand: drives the online pipeline end-to-end.
//!
//! Runs each requested method over one multi-window arrival stream
//! generated from a Table X scenario (per-window and cumulative
//! utility/latency reporting), then replays a shard-disjoint clustered
//! stream both unsharded and sharded by a spatial grid, checking that
//! the two agree exactly — the correctness witness of the sharded
//! execution mode. With `--halo` it additionally gates the halo
//! protocol's determinism (bit-for-bit fates against the unsharded run
//! on the disjoint witness) and reports the utility it recovers over
//! drop-pairs sharding on a boundary-heavy crossing stream.

use dpta_core::{AssignmentEngine, Method, Task, Worker};
use dpta_spatial::{Aabb, GridPartition, Point};
use dpta_stream::{
    run_sharded, run_sharded_halo, AdaptivePolicy, ArrivalEvent, ArrivalModel, ArrivalStream,
    LedgerMode, Outcome, PacingConfig, ServiceModel, SessionSnapshot, StreamConfig, StreamDriver,
    StreamReport, StreamScenario, StreamSession, TaskArrival, TaskFate, WindowPolicy,
    WorkerArrival,
};
use dpta_workloads::{Dataset, Scenario};

/// Options of the `stream` subcommand.
#[derive(Debug, Clone)]
pub struct StreamArgs {
    /// Methods to drive (default: PUCE, PGT, GRD).
    pub methods: Vec<Method>,
    /// Dataset feeding the scenario stream.
    pub dataset: Dataset,
    /// Batch-size scale relative to the paper's 1000-task batches.
    pub scale: f64,
    /// Scenario batches flattened into the stream.
    pub batches: usize,
    /// Window policy.
    pub policy: WindowPolicy,
    /// Master seed.
    pub seed: u64,
    /// Task time-to-live in windows.
    pub ttl: usize,
    /// Lifetime worker budget capacity (ε).
    pub capacity: f64,
    /// Shard grid (cols, rows) for the equivalence check.
    pub shards: (usize, usize),
    /// Run the boundary-halo analysis: determinism gate on the
    /// disjoint witness plus recovered-utility reporting on a
    /// crossing stream.
    pub halo: bool,
    /// Run the adaptive-windowing comparison: adaptive policy vs a
    /// 3-point static width sweep on the bursty arrival model,
    /// reporting p95 latency, utility and early/widened/narrowed
    /// window counts — gated on adaptive strictly beating the best
    /// static p95 at utility within 5 %.
    pub adaptive: bool,
    /// Run the worker re-entry comparison: serve-and-leave
    /// (`ServiceModel::Never`) vs a fixed service duration on a
    /// worker-scarce stream, with per-cycle utilization columns —
    /// gated on re-entry strictly raising fleet utilization
    /// (matches per worker arrival).
    pub reentry: bool,
    /// Run the durable-session smoke: snapshot every method's session
    /// mid-stream, serialize through JSON, restore, drain — gated on
    /// the resumed run matching the uninterrupted run bit for bit
    /// (fates, window cuts, spend and outcome log).
    pub resume: bool,
    /// Run the budget-economics comparison: lifetime accounting vs a
    /// sliding-window ledger (with the pacing controller on) on a
    /// long-horizon worker-scarce stream — gated on the windowed
    /// ledger sustaining strictly higher steady-state matches per
    /// worker than lifetime accounting for every budget-spending
    /// method.
    pub pacing: bool,
    /// Run the entity-scale sweep smoke: drain the constant-density
    /// sweep stream at 10³ and 10⁴ entities and gate the growth
    /// exponent between the two scales at sub-quadratic — the CLI
    /// counterpart of `bench_gate --scale-sweep`, cheap enough for a
    /// CI smoke step.
    pub scale_sweep: bool,
    /// Escalate pipeline warnings (e.g. the count-window shard
    /// coercion) to hard errors — `--verify`-style gating.
    pub strict: bool,
}

impl Default for StreamArgs {
    fn default() -> Self {
        StreamArgs {
            methods: vec![Method::Puce, Method::Pgt, Method::Grd],
            dataset: Dataset::Normal,
            scale: 0.1,
            batches: 2,
            policy: WindowPolicy::ByTime { width: 600.0 },
            seed: 42,
            ttl: 3,
            capacity: f64::INFINITY,
            shards: (2, 2),
            halo: false,
            adaptive: false,
            reentry: false,
            resume: false,
            pacing: false,
            scale_sweep: false,
            strict: false,
        }
    }
}

impl StreamArgs {
    /// The driver configuration: CLI knobs layered over the scenario's
    /// seed and budget settings (see [`StreamConfig::for_scenario`]).
    fn config(&self, scenario: &Scenario) -> StreamConfig {
        StreamConfig::builder_for_scenario(scenario)
            .policy(self.policy)
            .task_ttl(self.ttl)
            .worker_capacity(self.capacity)
            .build()
            .unwrap_or_else(|e| panic!("invalid stream configuration: {e}"))
    }
}

/// A shard-disjoint clustered stream: one cluster per cell of `part`,
/// worker discs interior to their cells, bursty task arrivals. Sharded
/// and unsharded execution must agree exactly on it.
fn disjoint_stream(part: &GridPartition, per_cell: usize, seed: u64) -> ArrivalStream {
    let frame = part.frame();
    let cell_w = frame.width() / part.cols() as f64;
    let cell_h = frame.height() / part.rows() as f64;
    let times = ArrivalModel::Bursty {
        base_rate: 0.02,
        burst_rate: 0.2,
        period: 900.0,
        burst_fraction: 0.3,
    }
    .times(seed, per_cell * part.n_shards());
    let mut events = Vec::new();
    let (mut task_id, mut worker_id) = (0u32, 0u32);
    for cy in 0..part.rows() {
        for cx in 0..part.cols() {
            let centre = Point::new(
                frame.min.x + (cx as f64 + 0.5) * cell_w,
                frame.min.y + (cy as f64 + 0.5) * cell_h,
            );
            let radius = 0.2 * cell_w.min(cell_h);
            let n_workers = per_cell.div_ceil(2).max(1);
            for k in 0..n_workers {
                let spread = 0.12 * cell_w.min(cell_h);
                let angle = k as f64 * 2.4;
                events.push(ArrivalEvent::Worker(WorkerArrival {
                    id: worker_id,
                    time: 0.0,
                    worker: Worker::new(
                        Point::new(
                            centre.x + spread * angle.cos(),
                            centre.y + spread * angle.sin(),
                        ),
                        radius,
                    ),
                }));
                worker_id += 1;
            }
            for k in 0..per_cell {
                let spread = 0.1 * cell_w.min(cell_h);
                let angle = k as f64 * 1.7 + 0.3;
                events.push(ArrivalEvent::Task(TaskArrival {
                    id: task_id,
                    time: times[task_id as usize],
                    task: Task::new(
                        Point::new(
                            centre.x + spread * angle.cos(),
                            centre.y + spread * angle.sin(),
                        ),
                        4.5,
                    ),
                }));
                task_id += 1;
            }
        }
    }
    ArrivalStream::new(events)
}

/// A stream whose utility lives on the cell boundaries: every interior
/// boundary of `part` hosts lines of worker/task pairs straddling it
/// (the worker left/below, his only reachable task on the far side),
/// plus one interior pair per cell. Drop-pairs sharding can match only
/// the interior pairs; the halo protocol can recover the rest.
fn crossing_stream(part: &GridPartition) -> ArrivalStream {
    let frame = *part.frame();
    let cell_w = frame.width() / part.cols() as f64;
    let cell_h = frame.height() / part.rows() as f64;
    let mut events = Vec::new();
    let (mut task_id, mut worker_id) = (0u32, 0u32);
    let mut pair = |wloc: Point, tloc: Point, radius: f64| {
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: worker_id,
            time: 0.0,
            worker: Worker::new(wloc, radius),
        }));
        events.push(ArrivalEvent::Task(TaskArrival {
            id: task_id,
            time: 30.0 + 45.0 * task_id as f64,
            task: Task::new(tloc, 4.5),
        }));
        task_id += 1;
        worker_id += 1;
    };
    // One interior pair per cell: the baseline drop-pairs can match.
    // Distances stay well under a unit so utilities are comfortably
    // positive even after privacy costs and noise.
    for cy in 0..part.rows() {
        for cx in 0..part.cols() {
            let centre = Point::new(
                frame.min.x + (cx as f64 + 0.5) * cell_w,
                frame.min.y + (cy as f64 + 0.5) * cell_h,
            );
            let r = 0.1 * cell_w.min(cell_h);
            pair(
                centre,
                Point::new(centre.x + (0.5 * r).min(0.8), centre.y),
                r,
            );
        }
    }
    // Cross-only pairs straddling every interior boundary, spaced far
    // enough apart that each task is reachable by its worker alone.
    let margin = (0.01 * cell_w.min(cell_h)).min(0.5);
    let radius = 4.0 * margin;
    for c in 1..part.cols() {
        let x_b = frame.min.x + c as f64 * cell_w;
        for row in 0..4 {
            let y = frame.min.y + (row as f64 + 0.5) * frame.height() / 4.0;
            pair(
                Point::new(x_b - margin, y),
                Point::new(x_b + margin, y),
                radius,
            );
        }
    }
    for r in 1..part.rows() {
        let y_b = frame.min.y + r as f64 * cell_h;
        for col in 0..4 {
            let x = frame.min.x + (col as f64 + 0.5) * frame.width() / 4.0;
            pair(
                Point::new(x, y_b - margin),
                Point::new(x, y_b + margin),
                radius,
            );
        }
    }
    ArrivalStream::new(events)
}

/// The bursty rush-hour stream of the `--adaptive` comparison and the
/// `figs1` streaming sweep — the same arrival process the drain
/// benches run, at the subcommand's scale: long off-peak lulls at
/// 0.05 tasks/s punctuated by 0.5 tasks/s bursts every 600 s, workers
/// trickling in Poisson behind an 80 % on-duty fleet.
pub(crate) fn bursty_stream(scenario: &Scenario) -> ArrivalStream {
    StreamScenario {
        scenario: *scenario,
        task_model: ArrivalModel::Bursty {
            base_rate: 0.05,
            burst_rate: 0.5,
            period: 600.0,
            burst_fraction: 0.25,
        },
        worker_model: ArrivalModel::Poisson { rate: 0.02 },
        initial_worker_fraction: 0.8,
    }
    .stream()
}

/// A worker-scarce stream for the `--reentry` comparison: the full
/// fleet is on duty at `t = 0` but covers only 40 % of the paced task
/// load, so serve-and-leave runs out of workers and re-entry's
/// recycled cycles are what carries the tail of the stream.
fn scarce_stream(scenario: &Scenario) -> ArrivalStream {
    StreamScenario {
        scenario: Scenario {
            worker_task_ratio: 0.4,
            // Double the service radius: the re-entry comparison is
            // about fleet *availability*, so reachability must not be
            // the binding constraint.
            worker_range: 2.0 * scenario.worker_range,
            ..*scenario
        },
        task_model: ArrivalModel::Paced { rate: 0.05 },
        worker_model: ArrivalModel::Poisson { rate: 0.02 },
        initial_worker_fraction: 1.0,
    }
    .stream()
}

/// The long-horizon scarce stream of the `--pacing` comparison: the
/// fleet is on duty from `t = 0` but covers a fraction of the paced
/// task load, services recycle workers, and the horizon spans many
/// windows — long enough that lifetime accounting exhausts and retires
/// the fleet mid-stream while a sliding-window ledger keeps serving.
fn pacing_stream(scenario: &Scenario) -> ArrivalStream {
    StreamScenario {
        scenario: Scenario {
            worker_task_ratio: 0.4,
            worker_range: 2.0 * scenario.worker_range,
            n_batches: scenario.n_batches.max(4),
            ..*scenario
        },
        task_model: ArrivalModel::Paced { rate: 0.05 },
        worker_model: ArrivalModel::Poisson { rate: 0.01 },
        initial_worker_fraction: 1.0,
    }
    .stream()
}

/// Matches per worker arrival over the second half of the run's
/// windows — the steady-state rate the `--pacing` gate compares, after
/// lifetime accounting has had time to exhaust the fleet.
fn steady_state_rate(report: &StreamReport) -> f64 {
    let tail = &report.windows[report.windows.len() / 2..];
    let matched: usize = tail.iter().map(|w| w.matched).sum();
    matched as f64 / report.worker_arrivals.max(1) as f64
}

/// The `--pacing` analysis: lifetime accounting vs a sliding-window
/// ledger (protection window = 3 window widths, pacing controller on)
/// under a tight per-worker capacity on the long-horizon scarce
/// stream. The gate demands what renewable budgets exist for: strictly
/// higher steady-state matches per worker than lifetime accounting,
/// for every method that actually spends privacy budget (non-private
/// baselines are noted and skipped; at least one method must be
/// gated). Returns `false` when any gated method misses it.
fn run_pacing_section(methods: &[Method], base: &StreamConfig, scenario: &Scenario) -> bool {
    let stream = pacing_stream(scenario);
    let width = 300.0;
    let protection = 3.0 * width;
    let lifetime_cfg = base
        .to_builder()
        .policy(WindowPolicy::ByTime { width })
        .worker_capacity(1.5)
        .service(ServiceModel::Fixed { secs: 240.0 })
        .ledger(LedgerMode::Lifetime)
        .build()
        .expect("valid lifetime configuration");
    let windowed_cfg = lifetime_cfg
        .to_builder()
        .ledger(LedgerMode::Windowed {
            window_secs: protection,
        })
        .pacing(Some(PacingConfig { horizon_windows: 3 }))
        .build()
        .expect("valid windowed configuration");
    println!(
        "
budget economics: lifetime vs sliding-window ledger (scarce fleet: {} tasks,          {} workers over {:.0} s; capacity ε = 1.5, protection window {:.0} s,          pacing horizon 3 windows):",
        stream.n_tasks(),
        stream.n_workers(),
        stream.horizon(),
        protection,
    );
    println!(
        "  {:<10} {:<10} {:>6} {:>5} {:>8} {:>9} {:>9} {:>12}",
        "method", "ledger", "match", "exp", "retired", "throttled", "spend ε", "steady m/W"
    );
    let mut ok = true;
    let mut gated = 0usize;
    for &method in methods {
        let engine = method.engine(&base.params);
        let (lifetime, _) = drive_session(engine.as_ref(), &lifetime_cfg, &stream);
        lifetime.assert_conservation();
        if lifetime.total_epsilon() == 0.0 {
            println!(
                "  {:<10} spends no privacy budget — renewable accounting cannot help; skipped",
                method.name()
            );
            continue;
        }
        let (windowed, _) = drive_session(engine.as_ref(), &windowed_cfg, &stream);
        windowed.assert_conservation();
        gated += 1;
        let retired: usize = lifetime.windows.iter().map(|w| w.workers_retired).sum();
        println!(
            "  {:<10} {:<10} {:>6} {:>5} {:>8} {:>9} {:>9.2} {:>12.3}",
            method.name(),
            "lifetime",
            lifetime.matched(),
            lifetime.expired(),
            retired,
            lifetime.throttled(),
            lifetime.total_epsilon(),
            steady_state_rate(&lifetime),
        );
        let improves = steady_state_rate(&windowed) > steady_state_rate(&lifetime);
        ok &= improves;
        println!(
            "  {:<10} {:<10} {:>6} {:>5} {:>8} {:>9} {:>9.2} {:>12.3}{}",
            "",
            "windowed",
            windowed.matched(),
            windowed.expired(),
            windowed
                .windows
                .iter()
                .map(|w| w.workers_retired)
                .sum::<usize>(),
            windowed.throttled(),
            windowed.total_epsilon(),
            steady_state_rate(&windowed),
            if improves {
                ""
            } else {
                "  — STEADY-STATE GATE FAILED"
            },
        );
    }
    if gated == 0 {
        println!("  no budget-spending method selected — the pacing gate is vacuous: FAILED");
        ok = false;
    }
    ok
}

/// Drains `stream` through the push-based session API, returning the
/// aggregate report plus the full typed outcome log (the per-cycle
/// columns of the re-entry table are counted off the `Returned`
/// outcomes).
fn drive_session(
    engine: &dyn AssignmentEngine,
    cfg: &StreamConfig,
    stream: &ArrivalStream,
) -> (StreamReport, Vec<Outcome>) {
    let mut session = StreamSession::new(engine, cfg.clone());
    for e in stream.events() {
        session.push(*e);
    }
    let report = session.close();
    let outcomes = session.poll_outcomes();
    (report, outcomes)
}

/// The `--reentry` analysis: serve-and-leave vs a fixed service
/// duration on the worker-scarce stream, per method. The gate demands
/// what re-entry exists for: strictly higher fleet utilization
/// (matches per worker arrival) than `ServiceModel::Never` on the same
/// arrivals. Returns `false` when any method misses it.
fn run_reentry_section(methods: &[Method], base: &StreamConfig, scenario: &Scenario) -> bool {
    let stream = scarce_stream(scenario);
    let service = ServiceModel::Fixed { secs: 240.0 };
    println!(
        "\nworker re-entry vs serve-and-leave (scarce fleet: {} tasks, {} workers \
         over {:.0} s; fixed 240 s service):",
        stream.n_tasks(),
        stream.n_workers(),
        stream.horizon(),
    );
    println!(
        "  {:<10} {:<14} {:>6} {:>5} {:>8} {:>8} {:>12}",
        "method", "service", "match", "exp", "util/W", "returns", "cycles 1/2/3+"
    );
    let mut ok = true;
    for &method in methods {
        let engine = method.engine(&base.params);
        let never_cfg = StreamConfig {
            service: ServiceModel::Never,
            ..base.clone()
        };
        let (never, _) = drive_session(engine.as_ref(), &never_cfg, &stream);
        never.assert_conservation();
        let reentry_cfg = StreamConfig {
            service,
            ..base.clone()
        };
        let (reentry, outcomes) = drive_session(engine.as_ref(), &reentry_cfg, &stream);
        reentry.assert_conservation();
        let (mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize);
        for o in &outcomes {
            if let Outcome::Returned { cycle, .. } = o {
                match cycle {
                    1 => c1 += 1,
                    2 => c2 += 1,
                    _ => c3 += 1,
                }
            }
        }
        println!(
            "  {:<10} {:<14} {:>6} {:>5} {:>8.3} {:>8} {:>12}",
            method.name(),
            "never",
            never.matched(),
            never.expired(),
            never.utilization(),
            never.returns(),
            "-",
        );
        let improves = reentry.utilization() > never.utilization();
        ok &= improves;
        println!(
            "  {:<10} {:<14} {:>6} {:>5} {:>8.3} {:>8} {:>12}{}",
            "",
            "fixed 240 s",
            reentry.matched(),
            reentry.expired(),
            reentry.utilization(),
            reentry.returns(),
            format!("{c1}/{c2}/{c3}"),
            if improves {
                ""
            } else {
                "  — UTILIZATION GATE FAILED"
            },
        );
    }
    ok
}

/// The `--resume` smoke: for each method, the stream is cut at its
/// midpoint, the session snapshotted there, serialized through JSON,
/// dropped and restored, and the tail drained — the resumed run must
/// match the uninterrupted run bit for bit (reports with timing zeroed,
/// plus the full typed outcome log). Returns `false` on any divergence.
fn run_resume_section(methods: &[Method], cfg: &StreamConfig, stream: &ArrivalStream) -> bool {
    let events = stream.events();
    let split = events.len() / 2;
    println!(
        "\ndurable-session smoke (snapshot at event {split}/{}, JSON round-trip, restore, drain):",
        events.len()
    );
    let mut ok = true;
    for &method in methods {
        let engine = method.engine(&cfg.params);
        let (baseline, base_outcomes) = drive_session(engine.as_ref(), cfg, stream);

        let mut session = StreamSession::new(engine.as_ref(), cfg.clone());
        for e in &events[..split] {
            session.push(*e);
        }
        if split > 0 {
            session.advance_to(events[split - 1].time());
        }
        let snapshot = session.snapshot();
        let json = snapshot.to_json();
        drop(session);
        let parsed = match SessionSnapshot::from_json(&json) {
            Ok(s) => s,
            Err(e) => {
                println!("  {:<10} snapshot did not round-trip: {e}", method.name());
                ok = false;
                continue;
            }
        };
        let mut session = match StreamSession::restore(engine.as_ref(), cfg.clone(), &parsed) {
            Ok(s) => s,
            Err(e) => {
                println!("  {:<10} restore failed: {e}", method.name());
                ok = false;
                continue;
            }
        };
        for e in &events[split..] {
            session.push(*e);
        }
        let resumed = session.close();
        let resumed_outcomes = session.poll_outcomes();

        let identical = resumed.without_timing() == baseline.without_timing()
            && resumed_outcomes == base_outcomes;
        ok &= identical;
        println!(
            "  {:<10} {:>5} matched, {} windows, {:.0} B snapshot | {}",
            method.name(),
            resumed.matched(),
            resumed.windows.len(),
            json.len(),
            if identical {
                "BIT-FOR-BIT (fates, cuts, spend, outcomes)"
            } else {
                "DIVERGED FROM UNINTERRUPTED RUN"
            },
        );
    }
    ok
}

/// One row of the adaptive comparison table.
fn adaptive_row(label: &str, report: &StreamReport) {
    println!(
        "  {:<12} {:>8.0} {:>8.0} {:>10.2} {:>6} {:>4} {:>6} {:>5} {:>7}",
        label,
        report.p95_latency(),
        report.mean_latency(),
        report.total_utility(),
        report.matched(),
        report.expired(),
        report.windows_cut_early(),
        report.windows_widened(),
        report.windows_narrowed(),
    );
}

/// The `--adaptive` analysis: for each method, a 3-point static
/// `ByTime` width sweep vs the adaptive controller on the bursty
/// stream. The gate demands the paper-style dominance the controller
/// exists for: strictly lower p95 matching latency than the *best*
/// static width (lowest sweep p95), at total utility within 5 % of
/// that same run. Returns `false` when any method misses it.
fn run_adaptive_section(methods: &[Method], base: &StreamConfig, stream: &ArrivalStream) -> bool {
    let widths = [150.0, 300.0, 600.0];
    let policy = AdaptivePolicy::default();
    println!(
        "\nadaptive windowing vs static widths (bursty arrivals: {} tasks, {} workers \
         over {:.0} s; adaptive base {:.0} s in [{:.0}, {:.0}], burst cut {} tasks, \
         target p95 {:.0} s):",
        stream.n_tasks(),
        stream.n_workers(),
        stream.horizon(),
        policy.base_width,
        policy.min_width,
        policy.max_width,
        policy.burst_tasks,
        policy.target_p95,
    );
    let mut ok = true;
    for &method in methods {
        let engine = method.engine(&base.params);
        println!(
            "  {:<12} {:>8} {:>8} {:>10} {:>6} {:>4} {:>6} {:>5} {:>7}",
            method.name(),
            "p95(s)",
            "mean(s)",
            "utility",
            "match",
            "exp",
            "early",
            "wide",
            "narrow"
        );
        let mut static_runs: Vec<(f64, StreamReport)> = Vec::new();
        for &w in &widths {
            let cfg = StreamConfig {
                policy: WindowPolicy::ByTime { width: w },
                ..base.clone()
            };
            let report = StreamDriver::new(engine.as_ref(), cfg).run(stream);
            report.assert_conservation();
            adaptive_row(&format!("time{w:.0}s"), &report);
            static_runs.push((w, report));
        }
        let cfg = StreamConfig {
            policy: WindowPolicy::Adaptive(policy),
            ..base.clone()
        };
        let adaptive = StreamDriver::new(engine.as_ref(), cfg).run(stream);
        adaptive.assert_conservation();
        adaptive_row("adaptive", &adaptive);
        let (best_width, best) = static_runs
            .iter()
            .min_by(|a, b| a.1.p95_latency().total_cmp(&b.1.p95_latency()))
            .map(|(w, r)| (*w, r))
            .expect("non-empty sweep");
        let latency_wins = adaptive.p95_latency() < best.p95_latency();
        let utility_holds = adaptive.total_utility() >= 0.95 * best.total_utility();
        ok &= latency_wins && utility_holds;
        println!(
            "  -> best static: {best_width:.0} s (p95 {:.0} s, utility {:.2}); adaptive {} \
             p95 and {} utility within 5 %{}",
            best.p95_latency(),
            best.total_utility(),
            if latency_wins { "beats" } else { "MISSES" },
            if utility_holds { "holds" } else { "LOSES" },
            if latency_wins && utility_holds {
                ""
            } else {
                " — GATE FAILED"
            },
        );
    }
    ok
}

/// Merged `(task id, fate)` view of a sharded run, for exact
/// comparison against the unsharded fate map.
fn merged_fates(report: &dpta_stream::ShardedReport) -> Vec<(u32, TaskFate)> {
    let mut fates: Vec<(u32, TaskFate)> = report
        .shards
        .iter()
        .flat_map(|s| s.fates.iter().map(|(&id, &f)| (id, f)))
        .collect();
    fates.sort_by_key(|&(id, _)| id);
    fates
}

/// The `--halo` analysis: (1) determinism gate — on the shard-disjoint
/// witness the halo run must reproduce the unsharded run fate for
/// fate; (2) recovered utility — on a boundary-crossing stream the
/// halo must strictly beat drop-pairs sharding. Returns `false` when
/// either gate fails.
fn run_halo_section(
    methods: &[Method],
    cfg: &StreamConfig,
    part: &GridPartition,
    disjoint: &ArrivalStream,
) -> bool {
    let mut ok = true;

    println!("\nhalo determinism gate (disjoint witness):");
    for &method in methods {
        let engine = method.engine(&cfg.params);
        let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(disjoint);
        let halo = run_sharded_halo(engine.as_ref(), disjoint, cfg, part);
        let flat_fates: Vec<(u32, TaskFate)> = flat.fates.iter().map(|(&id, &f)| (id, f)).collect();
        let agree = merged_fates(&halo) == flat_fates
            && (halo.total_utility() - flat.total_utility()).abs() < 1e-9;
        ok &= agree;
        println!(
            "  {:<10} {} matched, utility {:>10.2} | {}",
            method.name(),
            halo.matched(),
            halo.total_utility(),
            if agree {
                "EXACT (fates bit-for-bit)"
            } else {
                "DIVERGED"
            },
        );
    }

    let crossing = crossing_stream(part);
    println!(
        "\nhalo recovery on a crossing stream ({} tasks, {} workers, \
         pairs straddling every interior boundary):",
        crossing.n_tasks(),
        crossing.n_workers()
    );
    println!("  method     unsharded-u     drop-u       halo-u   recovered");
    for &method in methods {
        let engine = method.engine(&cfg.params);
        let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&crossing);
        let dropped = run_sharded(engine.as_ref(), &crossing, cfg, part);
        let halo = run_sharded_halo(engine.as_ref(), &crossing, cfg, part);
        let lost = flat.total_utility() - dropped.total_utility();
        let recovered = if lost > 1e-12 {
            (halo.total_utility() - dropped.total_utility()) / lost
        } else {
            1.0
        };
        // Strict improvement is only demanded when drop-pairs actually
        // lost utility; when nothing was lost, matching it is enough.
        let improves = if lost > 1e-12 {
            halo.total_utility() > dropped.total_utility()
        } else {
            halo.total_utility() >= dropped.total_utility() - 1e-9
        };
        ok &= improves;
        println!(
            "  {:<10} {:>11.2} {:>10.2} {:>12.2}   {:>6.1}% {}",
            method.name(),
            flat.total_utility(),
            dropped.total_utility(),
            halo.total_utility(),
            100.0 * recovered,
            if improves { "" } else { "— NO IMPROVEMENT" },
        );
    }
    ok
}

/// Constant-density stream for the `--scale-sweep` smoke, mirroring
/// the `scale_sweep` bench's construction: `n` task sites on a √n × √n
/// grid with 4-unit pitch, a radius-1 worker co-sited with every task
/// except each fifth site (an orphan that expires), one arrival per
/// second. Matching structure is exact at every scale — 4n/5 matched,
/// n/5 expired-or-pending — and the per-window live set is
/// scale-independent, so drain time should grow ~linearly in `n`.
fn scale_sweep_stream(n: usize) -> ArrivalStream {
    const SPACING: f64 = 4.0;
    const RADIUS: f64 = 1.0;
    let side = (n as f64).sqrt().ceil() as usize;
    let mut events = Vec::with_capacity(2 * n);
    for k in 0..n {
        let x = (k % side) as f64 * SPACING;
        let y = (k / side) as f64 * SPACING;
        let t = k as f64;
        if k % 5 != 4 {
            events.push(ArrivalEvent::Worker(WorkerArrival {
                id: k as u32,
                time: t,
                worker: Worker::new(Point::new(x, y), RADIUS),
            }));
        }
        events.push(ArrivalEvent::Task(TaskArrival {
            id: k as u32,
            time: t,
            task: Task::new(Point::new(x + 0.5 * RADIUS, y), 4.5),
        }));
    }
    ArrivalStream::new(events)
}

/// The `--scale-sweep` smoke: drains the constant-density stream at
/// 10³ and 10⁴ entities (best of a few repeats at the small scale to
/// tame timer noise), fits the growth exponent α between the two
/// scales (`t ∝ n^α`), and gates it at `max_exponent` — any
/// accidental O(n²) path (full-ledger scans per window, dead-slot
/// rebuilds, quadratic buffer drains) pushes α toward 2 and fails the
/// run. The bench-grade version of this gate (`bench_gate
/// --scale-sweep`, 10³ → 10⁵ with criterion medians) owns the
/// committed trajectory; this section is its cheap CI smoke.
fn run_scale_sweep_section(cfg: &StreamConfig, max_exponent: f64) -> bool {
    let sweep_cfg = StreamConfig {
        policy: WindowPolicy::ByTime { width: 120.0 },
        ..cfg.clone()
    };
    let engine = Method::Grd.engine(&sweep_cfg.params);

    println!("scale sweep: constant-density drain, 10^3 -> 10^4 entities");
    let mut timings = Vec::new();
    for (n, repeats) in [(1_000usize, 3u32), (10_000, 2)] {
        let stream = scale_sweep_stream(n);
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let start = std::time::Instant::now();
            let report = StreamDriver::new(engine.as_ref(), sweep_cfg.clone()).run(&stream);
            best = best.min(start.elapsed().as_secs_f64());
            let (matched, expired, pending) = report.assert_conservation();
            assert_eq!(
                (matched, expired + pending),
                (n - n / 5, n / 5),
                "sweep stream lost its exact matching structure at n={n}"
            );
        }
        println!(
            "  n={n:<6} drain {:>9.2} ms (best of {repeats})",
            best * 1e3
        );
        timings.push((n as f64, best));
    }
    let (n1, t1) = timings[0];
    let (n2, t2) = timings[1];
    let alpha = (t2 / t1).ln() / (n2 / n1).ln();
    let ok = alpha <= max_exponent;
    println!(
        "  growth exponent n^{alpha:.2} (gate n^{max_exponent:.2}) {}",
        if ok {
            "— OK"
        } else {
            "— SUPER-LINEAR DRIFT"
        },
    );
    ok
}

/// Runs the subcommand. Returns `false` if the sharded/unsharded
/// equivalence check failed (the caller turns that into a non-zero
/// exit).
pub fn run(args: &StreamArgs) -> bool {
    let scenario = Scenario {
        dataset: args.dataset,
        batch_size: ((1000.0 * args.scale).round() as usize).max(20),
        n_batches: args.batches,
        seed: args.seed,
        ..Scenario::default()
    };
    let cfg = args.config(&scenario);
    let stream = StreamScenario::new(scenario).stream();
    println!(
        "arrival stream: {} tasks, {} workers over {:.0} s ({} dataset, scale {})\n",
        stream.n_tasks(),
        stream.n_workers(),
        stream.horizon(),
        args.dataset,
        args.scale,
    );

    let mut all_match = true;
    for &method in &args.methods {
        let engine = method.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
        report.assert_conservation();
        println!("{}", report.render());
    }

    if args.resume {
        all_match &= run_resume_section(&args.methods, &cfg, &stream);
    }

    if args.adaptive {
        all_match &= run_adaptive_section(&args.methods, &cfg, &bursty_stream(&scenario));
    }

    if args.reentry {
        all_match &= run_reentry_section(&args.methods, &cfg, &scenario);
    }

    if args.pacing {
        all_match &= run_pacing_section(&args.methods, &cfg, &scenario);
    }

    if args.scale_sweep {
        all_match &= run_scale_sweep_section(&cfg, 1.8);
        println!();
    }

    // Sharded-vs-unsharded witness on shard-disjoint input. Exactness
    // needs aligned window boundaries: time windows align by anchoring,
    // adaptive windows align because every mode shares one controller
    // over the merged global stream; count windows close on shard-local
    // arrivals and cannot line up, so the witness coerces them to time
    // windows — an explicit warning, and a hard error under --strict.
    let mut coerced = false;
    let cfg = match cfg.policy {
        WindowPolicy::ByTime { .. } | WindowPolicy::Adaptive(_) => cfg,
        WindowPolicy::ByCount { .. } => {
            coerced = true;
            println!(
                "warning: {} — shard check coerced to 600 s time windows",
                dpta_stream::COUNT_WINDOW_SHARD_WARNING
            );
            StreamConfig {
                policy: WindowPolicy::ByTime { width: 600.0 },
                ..cfg
            }
        }
    };
    let (cols, rows) = args.shards;
    let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), cols, rows);
    let per_cell = (stream.n_tasks() / part.n_shards()).clamp(10, 200);
    let disjoint = disjoint_stream(&part, per_cell, args.seed);
    assert!(disjoint.is_shard_disjoint(&part));
    println!(
        "shard check: {} tasks, {} workers across a {}×{} grid",
        disjoint.n_tasks(),
        disjoint.n_workers(),
        cols,
        rows
    );
    for &method in &args.methods {
        let engine = method.engine(&cfg.params);
        let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&disjoint);
        let sharded = run_sharded(engine.as_ref(), &disjoint, &cfg, &part);
        let agree = sharded.matched() == flat.matched()
            && (sharded.total_utility() - flat.total_utility()).abs() < 1e-9;
        all_match &= agree;
        println!(
            "  {:<10} unsharded {:>4} matched (utility {:>10.2}) | sharded {:>4} \
             (utility {:>10.2}) | {} · critical path {:.2} ms vs flat {:.2} ms",
            method.name(),
            flat.matched(),
            flat.total_utility(),
            sharded.matched(),
            sharded.total_utility(),
            if agree { "EXACT" } else { "MISMATCH" },
            sharded.critical_path().as_secs_f64() * 1e3,
            flat.drive_time().as_secs_f64() * 1e3,
        );
    }

    if args.halo {
        all_match &= run_halo_section(&args.methods, &cfg, &part, &disjoint);
    }
    if coerced && args.strict {
        println!(
            "error (--strict): the count-window coercion above is a hard error; \
             rerun with --window-secs (time windows) or an adaptive policy"
        );
        all_match = false;
    }
    all_match
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_generator_is_disjoint_and_deterministic() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 3, 2);
        let a = disjoint_stream(&part, 12, 7);
        assert!(a.is_shard_disjoint(&part));
        assert_eq!(a.n_tasks(), 72);
        assert_eq!(a, disjoint_stream(&part, 12, 7));
    }

    #[test]
    fn subcommand_runs_three_methods_and_shard_check_passes() {
        let args = StreamArgs {
            scale: 0.03, // 30-task batches: fast but multi-window
            policy: WindowPolicy::ByTime { width: 120.0 },
            ..StreamArgs::default()
        };
        assert!(args.methods.len() >= 3);
        assert!(run(&args), "sharded run must match unsharded exactly");
    }

    #[test]
    fn halo_gates_pass_and_recovery_is_strict() {
        // --halo adds two gates: bit-for-bit determinism on the
        // disjoint witness, and strictly-higher utility than drop-pairs
        // on the crossing stream. Both must hold for all three default
        // methods (two private, one plain).
        let args = StreamArgs {
            scale: 0.03,
            policy: WindowPolicy::ByTime { width: 120.0 },
            halo: true,
            ..StreamArgs::default()
        };
        assert!(run(&args), "halo determinism or recovery gate failed");
    }

    #[test]
    fn crossing_stream_is_cross_only_beyond_interior_pairs() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 3, 2);
        let s = crossing_stream(&part);
        assert!(!s.is_shard_disjoint(&part));
        // One interior pair per cell + 4 pairs per interior boundary.
        let boundaries = (part.cols() - 1) + (part.rows() - 1);
        assert_eq!(s.n_tasks(), part.n_shards() + 4 * boundaries);
        assert_eq!(s.n_workers(), s.n_tasks());
        assert_eq!(s, crossing_stream(&part));
    }

    #[test]
    fn reentry_gate_beats_serve_and_leave() {
        // Pins the ISSUE 5 acceptance claim at the CI smoke scale: with
        // a fixed service duration enabled, fleet utilization strictly
        // exceeds serve-and-leave for all three default methods on the
        // scarce stream.
        let scenario = Scenario {
            dataset: Dataset::Normal,
            batch_size: 30,
            n_batches: 2,
            seed: 42,
            ..Scenario::default()
        };
        let cfg = StreamArgs::default().config(&scenario);
        assert!(
            run_reentry_section(&[Method::Puce, Method::Pgt, Method::Grd], &cfg, &scenario),
            "the re-entry utilization gate must hold at the default scenario"
        );
    }

    #[test]
    fn pacing_gate_windowed_beats_lifetime() {
        // Pins the PR 9 acceptance claim at the CI smoke scale: under a
        // tight lifetime capacity the sliding-window ledger sustains
        // strictly higher steady-state matches per worker than lifetime
        // accounting for every budget-spending method (the non-private
        // baseline is skipped with a note).
        let scenario = Scenario {
            dataset: Dataset::Normal,
            batch_size: 30,
            n_batches: 2,
            seed: 42,
            ..Scenario::default()
        };
        let cfg = StreamArgs::default().config(&scenario);
        assert!(
            run_pacing_section(&[Method::Puce, Method::Pgt, Method::Grd], &cfg, &scenario),
            "the windowed-ledger steady-state gate must hold at the default scenario"
        );
    }

    #[test]
    fn resume_smoke_is_bit_for_bit_across_policies() {
        // Pins the PR 7 acceptance claim at the CI smoke scale: the
        // mid-stream snapshot/restore drain matches the uninterrupted
        // run bit for bit for every default method, under both a static
        // and the adaptive window policy.
        for policy in [
            WindowPolicy::ByTime { width: 120.0 },
            WindowPolicy::Adaptive(AdaptivePolicy::default()),
        ] {
            let args = StreamArgs {
                scale: 0.03,
                policy,
                resume: true,
                ..StreamArgs::default()
            };
            assert!(run(&args), "durable-session smoke failed under {policy:?}");
        }
    }

    #[test]
    fn count_policy_still_passes_the_shard_gate() {
        // The witness check coerces to a time policy: count windows
        // cannot align across shards, and that must not fail the gate.
        let args = StreamArgs {
            scale: 0.03,
            policy: WindowPolicy::ByCount { tasks: 20 },
            methods: vec![Method::Grd],
            ..StreamArgs::default()
        };
        assert!(run(&args));
    }

    #[test]
    fn strict_escalates_the_count_window_coercion() {
        // Regression (ROADMAP leftover): the silent ByCount→ByTime
        // coercion in the witness gate is a warning by default and a
        // hard error under --strict.
        let args = StreamArgs {
            scale: 0.03,
            policy: WindowPolicy::ByCount { tasks: 20 },
            methods: vec![Method::Grd],
            strict: true,
            ..StreamArgs::default()
        };
        assert!(!run(&args), "--strict must fail the coerced gate");
        // Strict mode with an alignable policy stays green.
        let args = StreamArgs {
            scale: 0.03,
            policy: WindowPolicy::ByTime { width: 120.0 },
            methods: vec![Method::Grd],
            strict: true,
            ..StreamArgs::default()
        };
        assert!(run(&args));
    }

    #[test]
    fn count_windows_under_drop_pairs_carry_the_misalignment_warning() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 1);
        let stream = disjoint_stream(&part, 10, 7);
        let count_cfg = StreamConfig {
            policy: WindowPolicy::ByCount { tasks: 5 },
            ..StreamConfig::default()
        };
        let engine = Method::Grd.engine(&count_cfg.params);
        let sharded = run_sharded(engine.as_ref(), &stream, &count_cfg, &part);
        assert!(
            sharded.warnings().iter().any(|w| w.contains("shard-local")),
            "count windows under drop-pairs must warn about misalignment"
        );
        // Time windows align and carry no warning.
        let time_cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 300.0 },
            ..StreamConfig::default()
        };
        let sharded = run_sharded(engine.as_ref(), &stream, &time_cfg, &part);
        assert!(sharded.warnings().is_empty());
    }

    #[test]
    fn adaptive_policy_passes_the_shard_gate_directly() {
        // Adaptive windows are formed off the merged global stream, so
        // the witness gate runs them without coercion and sharded
        // execution must agree with unsharded bit for bit.
        let args = StreamArgs {
            scale: 0.03,
            policy: WindowPolicy::Adaptive(AdaptivePolicy::default()),
            methods: vec![Method::Puce, Method::Grd],
            strict: true,
            ..StreamArgs::default()
        };
        assert!(run(&args));
    }

    #[test]
    fn adaptive_gate_beats_best_static_p95_at_comparable_utility() {
        // Pins the ISSUE 4 acceptance claim at the CI smoke scale: on
        // the bursty arrival model the adaptive controller reports
        // strictly lower p95 matching latency than the best static
        // width of the 3-point sweep, at utility within 5 %, for all
        // three default methods.
        let scenario = Scenario {
            dataset: Dataset::Normal,
            batch_size: 50,
            n_batches: 2,
            seed: 42,
            ..Scenario::default()
        };
        let cfg = StreamArgs::default().config(&scenario);
        let stream = bursty_stream(&scenario);
        assert!(
            run_adaptive_section(&[Method::Puce, Method::Pgt, Method::Grd], &cfg, &stream),
            "the adaptive windowing gate must hold at the default scenario"
        );
    }
}
