//! The experiment registry: one entry per table/figure of the paper's
//! evaluation, with the exact Table X sweeps.

use dpta_core::Method;
use dpta_workloads::Dataset;

/// The parameter swept on a figure's x-axis (Table X).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sweep {
    /// Worker-task ratio 1 → 3.
    WorkerRatio,
    /// Task value 1.5 → 7.5.
    TaskValue,
    /// Worker range 0.8 → 2.0 km.
    WorkerRange,
    /// Privacy budget groups [0.5,0.75] → [1.5,1.75] (Figure 17/25).
    PrivacyBudget,
    /// Streaming window width 150 → 2400 s (the `figs1` streaming
    /// sweep): the batching knob of the online pipeline, traded
    /// between matched latency and per-match utility.
    WindowWidth,
}

impl Sweep {
    /// Axis label as used in the paper.
    pub fn axis(&self) -> &'static str {
        match self {
            Sweep::WorkerRatio => "worker ratio",
            Sweep::TaskValue => "task value",
            Sweep::WorkerRange => "worker range",
            Sweep::PrivacyBudget => "privacy budget",
            Sweep::WindowWidth => "window width (s)",
        }
    }

    /// The swept values (Table X rows; budget groups are labelled by
    /// their midpoint like the paper's x-axis).
    pub fn values(&self) -> Vec<f64> {
        match self {
            Sweep::WorkerRatio => vec![1.0, 1.5, 2.0, 2.5, 3.0],
            Sweep::TaskValue => vec![1.5, 3.0, 4.5, 6.0, 7.5],
            Sweep::WorkerRange => vec![0.8, 1.1, 1.4, 1.7, 2.0],
            Sweep::PrivacyBudget => vec![0.625, 0.875, 1.125, 1.375, 1.625],
            Sweep::WindowWidth => vec![150.0, 300.0, 600.0, 1200.0, 2400.0],
        }
    }

    /// For the budget sweep, the group interval behind a swept value.
    pub fn budget_group(x: f64) -> (f64, f64) {
        (x - 0.125, x + 0.125)
    }
}

/// What a figure panel reports (Section VII-C measures + running time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureKind {
    /// Running time (ms) — Figure 4/18.
    TimeMs,
    /// Average utility `U_AVG`.
    AvgUtility,
    /// Relative deviation of utility `U_RD` (private methods only).
    RdUtility,
    /// Average travel distance `D_AVG` (km).
    AvgDistance,
    /// Relative deviation of distance `D_RD` (private methods only).
    RdDistance,
    /// p95 seconds from task arrival to the close of its matching
    /// window (streaming sweeps only).
    P95LatencyS,
}

impl MeasureKind {
    /// Panel title as used in the paper's sub-captions.
    pub fn title(&self) -> &'static str {
        match self {
            MeasureKind::TimeMs => "running time (ms)",
            MeasureKind::AvgUtility => "average utility",
            MeasureKind::RdUtility => "relative deviation of utility",
            MeasureKind::AvgDistance => "average distance (km)",
            MeasureKind::RdDistance => "relative deviation of distance",
            MeasureKind::P95LatencyS => "p95 matched latency (s)",
        }
    }
}

/// Which Table IX methods a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodSet {
    /// PUCE, PDCE, PGT, UCE, DCE, GT, GRD (Figures 4–16).
    Main,
    /// PUCE, PDCE, PUCE-nppcf, PDCE-nppcf (Figures 17/25).
    PpcfAblation,
    /// PUCE, PGT, GRD — the streaming-sweep set (one engine per
    /// family: conflict-elimination, game, one-shot baseline).
    Streaming,
}

impl MethodSet {
    /// The concrete methods.
    pub fn methods(&self) -> Vec<Method> {
        match self {
            MethodSet::Main => Method::paper_main_set().to_vec(),
            MethodSet::PpcfAblation => Method::ppcf_ablation_set().to_vec(),
            MethodSet::Streaming => vec![Method::Puce, Method::Pgt, Method::Grd],
        }
    }
}

/// One experiment: a paper figure (or appendix figure) to regenerate.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Experiment id, e.g. `fig07`.
    pub id: &'static str,
    /// The paper's caption, abbreviated.
    pub caption: &'static str,
    /// Data sets of the figure's panels.
    pub datasets: &'static [Dataset],
    /// Swept parameter.
    pub sweep: Sweep,
    /// Reported measures.
    pub measures: &'static [MeasureKind],
    /// Plotted methods.
    pub methods: MethodSet,
}

use Dataset::{Chengdu, Normal, Uniform};
use MeasureKind::{AvgDistance, AvgUtility, RdDistance, RdUtility, TimeMs};

const UTILITY: &[MeasureKind] = &[AvgUtility, RdUtility];
const DISTANCE: &[MeasureKind] = &[AvgDistance, RdDistance];

/// Every experiment of the evaluation section and appendix D.
pub fn registry() -> Vec<FigureSpec> {
    vec![
        FigureSpec {
            id: "fig04",
            caption: "impact of the worker ratio on the time cost",
            datasets: &[Chengdu, Normal],
            sweep: Sweep::WorkerRatio,
            measures: &[TimeMs],
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig05",
            caption: "impact of the task value on the utility (chengdu)",
            datasets: &[Chengdu],
            sweep: Sweep::TaskValue,
            measures: UTILITY,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig06",
            caption: "impact of the task value on the utility (normal)",
            datasets: &[Normal],
            sweep: Sweep::TaskValue,
            measures: UTILITY,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig07",
            caption: "impact of the worker range on the utility (chengdu)",
            datasets: &[Chengdu],
            sweep: Sweep::WorkerRange,
            measures: UTILITY,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig08",
            caption: "impact of the worker range on the utility (normal)",
            datasets: &[Normal],
            sweep: Sweep::WorkerRange,
            measures: UTILITY,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig09",
            caption: "impact of the worker ratio on the utility (chengdu)",
            datasets: &[Chengdu],
            sweep: Sweep::WorkerRatio,
            measures: UTILITY,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig10",
            caption: "impact of the worker ratio on the utility (normal)",
            datasets: &[Normal],
            sweep: Sweep::WorkerRatio,
            measures: UTILITY,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig11",
            caption: "impact of the task value on the distance (chengdu)",
            datasets: &[Chengdu],
            sweep: Sweep::TaskValue,
            measures: DISTANCE,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig12",
            caption: "impact of the task value on the distance (normal)",
            datasets: &[Normal],
            sweep: Sweep::TaskValue,
            measures: DISTANCE,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig13",
            caption: "impact of the worker range on the distance (chengdu)",
            datasets: &[Chengdu],
            sweep: Sweep::WorkerRange,
            measures: DISTANCE,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig14",
            caption: "impact of the worker range on the distance (normal)",
            datasets: &[Normal],
            sweep: Sweep::WorkerRange,
            measures: DISTANCE,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig15",
            caption: "impact of the worker ratio on the distance (chengdu)",
            datasets: &[Chengdu],
            sweep: Sweep::WorkerRatio,
            measures: DISTANCE,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig16",
            caption: "impact of the worker ratio on the distance (normal)",
            datasets: &[Normal],
            sweep: Sweep::WorkerRatio,
            measures: DISTANCE,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig17",
            caption: "impact of privacy on the utility (PPCF vs non-PPCF)",
            datasets: &[Chengdu, Normal],
            sweep: Sweep::PrivacyBudget,
            measures: &[AvgUtility],
            methods: MethodSet::PpcfAblation,
        },
        // Appendix D (uniform data set).
        FigureSpec {
            id: "fig18",
            caption: "worker ratio vs time cost (uniform)",
            datasets: &[Uniform],
            sweep: Sweep::WorkerRatio,
            measures: &[TimeMs],
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig19",
            caption: "task value vs utility (uniform)",
            datasets: &[Uniform],
            sweep: Sweep::TaskValue,
            measures: UTILITY,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig20",
            caption: "worker range vs utility (uniform)",
            datasets: &[Uniform],
            sweep: Sweep::WorkerRange,
            measures: UTILITY,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig21",
            caption: "worker ratio vs utility (uniform)",
            datasets: &[Uniform],
            sweep: Sweep::WorkerRatio,
            measures: UTILITY,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig22",
            caption: "task value vs distance (uniform)",
            datasets: &[Uniform],
            sweep: Sweep::TaskValue,
            measures: DISTANCE,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig23",
            caption: "worker range vs distance (uniform)",
            datasets: &[Uniform],
            sweep: Sweep::WorkerRange,
            measures: DISTANCE,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig24",
            caption: "worker ratio vs distance (uniform)",
            datasets: &[Uniform],
            sweep: Sweep::WorkerRatio,
            measures: DISTANCE,
            methods: MethodSet::Main,
        },
        FigureSpec {
            id: "fig25",
            caption: "privacy vs utility, PPCF ablation (uniform)",
            datasets: &[Uniform],
            sweep: Sweep::PrivacyBudget,
            measures: &[AvgUtility],
            methods: MethodSet::PpcfAblation,
        },
        // Streaming sweep (not a paper figure): the online pipeline's
        // window-width trade-off, runnable and `--verify`-gated like
        // the batch figures so streaming behaviour is pinned too.
        FigureSpec {
            id: "figs1",
            caption: "streaming: window width vs utility and matched latency (bursty arrivals)",
            datasets: &[Normal],
            sweep: Sweep::WindowWidth,
            measures: &[AvgUtility, MeasureKind::P95LatencyS],
            methods: MethodSet::Streaming,
        },
    ]
}

/// Looks an experiment up by id (case-insensitive).
pub fn find(id: &str) -> Option<FigureSpec> {
    let id = id.to_ascii_lowercase();
    registry().into_iter().find(|f| f.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_evaluation_figure() {
        let reg = registry();
        assert_eq!(reg.len(), 23);
        for k in 4..=25 {
            let id = format!("fig{k:02}");
            assert!(reg.iter().any(|f| f.id == id), "missing {id}");
        }
        // Plus the streaming sweep.
        let figs1 = reg.iter().find(|f| f.id == "figs1").expect("figs1");
        assert_eq!(figs1.sweep, Sweep::WindowWidth);
        assert!(figs1.measures.contains(&MeasureKind::P95LatencyS));
        assert_eq!(figs1.methods.methods().len(), 3);
    }

    #[test]
    fn sweeps_match_table_x() {
        assert_eq!(Sweep::WorkerRatio.values(), vec![1.0, 1.5, 2.0, 2.5, 3.0]);
        assert_eq!(Sweep::TaskValue.values(), vec![1.5, 3.0, 4.5, 6.0, 7.5]);
        assert_eq!(Sweep::WorkerRange.values(), vec![0.8, 1.1, 1.4, 1.7, 2.0]);
        // Budget groups reconstruct Table X's intervals.
        let groups: Vec<(f64, f64)> = Sweep::PrivacyBudget
            .values()
            .into_iter()
            .map(Sweep::budget_group)
            .collect();
        assert_eq!(groups[0], (0.5, 0.75));
        assert_eq!(groups[4], (1.5, 1.75));
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("FIG07").is_some());
        assert!(find("fig99").is_none());
    }

    #[test]
    fn method_sets_match_table_ix() {
        let main = MethodSet::Main.methods();
        assert_eq!(main.len(), 7);
        assert!(main.contains(&Method::Puce));
        assert!(main.contains(&Method::Grd));
        let ab = MethodSet::PpcfAblation.methods();
        assert_eq!(ab.len(), 4);
        assert!(ab.contains(&Method::PuceNppcf));
    }
}
