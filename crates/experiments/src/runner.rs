//! Scenario execution: runs a method grid over a scenario's batches,
//! timing each method and aggregating the Section VII-C measures.

use crate::figures::{FigureSpec, MeasureKind, Sweep};
use dpta_core::metrics::{measure, relative_deviation_distance, relative_deviation_utility};
use dpta_core::{AssignmentEngine, Instance, Measures, Method, RunParams};
use dpta_dp::SeededNoise;
use dpta_workloads::{Dataset, Scenario};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Execution options shared by the CLI, tests and benches.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Scales the per-batch task count (1.0 = the paper's 1000-task
    /// batches). Values below `20 / 1000` are clamped so instances stay
    /// non-trivial.
    pub scale: f64,
    /// Batches per sweep point.
    pub n_batches: usize,
    /// Algorithm parameters (seed, α, β, accounting, fallback).
    pub params: RunParams,
    /// Noise-seed replications per batch: measures are merged across
    /// `n_seeds` independent noise draws (the data set stays fixed) and
    /// timings averaged, shrinking DP-noise variance in the series.
    pub n_seeds: usize,
    /// Run batches on worker threads (std scoped threads).
    pub parallel: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: 1.0,
            n_batches: 2,
            params: RunParams::default(),
            n_seeds: 1,
            parallel: true,
        }
    }
}

impl RunOptions {
    /// Per-batch task count under this scale.
    pub fn batch_size(&self) -> usize {
        ((1000.0 * self.scale).round() as usize).max(20)
    }
}

/// One method's aggregate over a scenario's batches (or, for the
/// streaming sweep, over one drained arrival stream).
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// The method.
    pub method: Method,
    /// Measures merged across batches.
    pub measures: Measures,
    /// Total algorithm wall time across batches (instance generation
    /// excluded) — the Figure 4 measure.
    pub elapsed: Duration,
    /// p95 seconds from task arrival to the close of its matching
    /// window. Only streaming sweeps ([`Sweep::WindowWidth`]) produce
    /// it; batch figures leave it `None`.
    pub p95_latency_s: Option<f64>,
}

/// Manual impl so the export unit for `elapsed` (fractional
/// milliseconds, under the `elapsed_ms` key) is chosen here at the use
/// site rather than by whatever a serde implementation does with
/// `Duration`.
impl serde::Serialize for MethodResult {
    fn serialize_value(&self) -> serde::Value {
        let mut fields = vec![
            ("method".to_string(), self.method.serialize_value()),
            ("measures".to_string(), self.measures.serialize_value()),
            (
                "elapsed_ms".to_string(),
                serde::Value::Number(self.elapsed.as_secs_f64() * 1e3),
            ),
        ];
        if let Some(p95) = self.p95_latency_s {
            fields.push(("p95_latency_s".to_string(), serde::Value::Number(p95)));
        }
        serde::Value::Object(fields)
    }
}

/// One x-axis point of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// Per-method results at this point.
    pub results: Vec<MethodResult>,
}

impl SweepPoint {
    /// The result for `method`, if it was run.
    pub fn result(&self, method: Method) -> Option<&MethodResult> {
        self.results.iter().find(|r| r.method == method)
    }
}

/// One rendered series table (a figure panel).
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Panel title, e.g. `fig07(a) average utility — chengdu`.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// x-axis tick labels.
    pub x_values: Vec<String>,
    /// `(method name, series)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
}

/// A fully executed figure: raw sweep data per dataset plus the
/// rendered panels.
#[derive(Debug, Clone, Serialize)]
pub struct FigureOutput {
    /// Experiment id (`fig07`).
    pub id: String,
    /// Abbreviated caption.
    pub caption: String,
    /// Raw per-dataset sweeps: `(dataset, points)`.
    pub sweeps: Vec<(Dataset, Vec<SweepPoint>)>,
    /// Rendered panels in paper order.
    pub tables: Vec<Table>,
}

/// Builds the scenario for one sweep point of a figure.
pub fn scenario_for(spec: &FigureSpec, dataset: Dataset, x: f64, opts: &RunOptions) -> Scenario {
    let mut sc = Scenario {
        dataset,
        batch_size: opts.batch_size(),
        n_batches: opts.n_batches,
        seed: opts.params.seed,
        ..Scenario::default()
    };
    match spec.sweep {
        Sweep::WorkerRatio => sc.worker_task_ratio = x,
        Sweep::TaskValue => sc.task_value = x,
        Sweep::WorkerRange => sc.worker_range = x,
        Sweep::PrivacyBudget => sc.budget_range = Sweep::budget_group(x),
        // The window width is a stream-driver knob, not a scenario one:
        // the streaming runner applies it to the StreamConfig instead.
        Sweep::WindowWidth => {}
    }
    sc
}

/// Runs every method over every batch of a scenario, timing the
/// algorithm only (instances are generated up front).
pub fn run_scenario(
    scenario: &Scenario,
    methods: &[Method],
    opts: &RunOptions,
) -> Vec<MethodResult> {
    let batches = scenario.batches();
    methods
        .iter()
        .map(|&method| run_method(&batches, method, opts))
        .collect()
}

fn run_method(batches: &[Instance], method: Method, opts: &RunOptions) -> MethodResult {
    let n_seeds = opts.n_seeds.max(1);
    // Resolve the engine once; only the noise seed varies per
    // replication, and engines are immutable `Send + Sync` config
    // holders, so one boxed engine serves every parallel batch worker.
    let engine = method.engine(&opts.params);
    let engine = engine.as_ref();
    let seeds: Vec<u64> = (0..n_seeds as u64)
        .map(|s| {
            opts.params
                .seed
                .wrapping_add(s.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        })
        .collect();

    let mut measures = Measures::zero();
    let mut elapsed = Duration::ZERO;
    for &seed in &seeds {
        let params = RunParams {
            seed,
            ..opts.params
        };
        let per_batch: Vec<(Measures, Duration)> = if opts.parallel && batches.len() > 1 {
            let mut slots: Vec<Option<(Measures, Duration)>> = vec![None; batches.len()];
            std::thread::scope(|s| {
                for (inst, slot) in batches.iter().zip(slots.iter_mut()) {
                    let params = &params;
                    s.spawn(move || {
                        *slot = Some(run_batch(inst, engine, params));
                    });
                }
            });
            slots.into_iter().map(|s| s.expect("batch ran")).collect()
        } else {
            batches
                .iter()
                .map(|inst| run_batch(inst, engine, &params))
                .collect()
        };
        for (m, d) in per_batch {
            measures.merge(&m);
            elapsed += d;
        }
    }
    // Report the per-replication timing so Figure 4 stays comparable
    // whatever `n_seeds` is.
    MethodResult {
        method,
        measures,
        elapsed: elapsed / n_seeds as u32,
        p95_latency_s: None,
    }
}

fn run_batch(
    inst: &Instance,
    engine: &dyn AssignmentEngine,
    params: &RunParams,
) -> (Measures, Duration) {
    let noise = SeededNoise::new(params.seed);
    let start = Instant::now();
    let outcome = engine.run(inst, &noise);
    let elapsed = start.elapsed();
    let m = measure(
        inst,
        &outcome,
        params.alpha,
        params.beta,
        engine.accounts_privacy(),
    );
    (m, elapsed)
}

/// Executes a full figure: every dataset panel, every sweep point,
/// every method; renders one table per (dataset, measure). Streaming
/// sweeps ([`Sweep::WindowWidth`]) run the online pipeline instead of
/// the batch runner, producing the same table/claim-checkable shape.
pub fn run_figure(spec: &FigureSpec, opts: &RunOptions) -> FigureOutput {
    if spec.sweep == Sweep::WindowWidth {
        return run_stream_figure(spec, opts);
    }
    let methods = spec.methods.methods();
    let xs = spec.sweep.values();
    let mut sweeps = Vec::new();
    for &dataset in spec.datasets {
        let points: Vec<SweepPoint> = xs
            .iter()
            .map(|&x| {
                let sc = scenario_for(spec, dataset, x, opts);
                SweepPoint {
                    x,
                    results: run_scenario(&sc, &methods, opts),
                }
            })
            .collect();
        sweeps.push((dataset, points));
    }

    let mut tables = Vec::new();
    for (dataset, points) in &sweeps {
        for &mk in spec.measures {
            tables.push(render_panel(spec, *dataset, mk, points));
        }
    }

    FigureOutput {
        id: spec.id.to_string(),
        caption: spec.caption.to_string(),
        sweeps,
        tables,
    }
}

/// The streaming sweep: each x value is a `ByTime` window width, each
/// method drains the same bursty arrival stream through the online
/// pipeline, and the Section VII-C measures are read off the aggregate
/// [`dpta_stream::StreamReport`] (plus the p95 matched latency the
/// batch runner has no notion of). One stream per dataset, shared
/// across widths and methods, so the sweep isolates the windowing
/// knob.
fn run_stream_figure(spec: &FigureSpec, opts: &RunOptions) -> FigureOutput {
    use dpta_stream::{StreamConfig, StreamDriver, WindowPolicy};

    let methods = spec.methods.methods();
    let xs = spec.sweep.values();
    let mut sweeps = Vec::new();
    for &dataset in spec.datasets {
        let scenario = Scenario {
            dataset,
            batch_size: opts.batch_size(),
            n_batches: opts.n_batches,
            seed: opts.params.seed,
            ..Scenario::default()
        };
        let stream = crate::stream_cmd::bursty_stream(&scenario);
        let points: Vec<SweepPoint> = xs
            .iter()
            .map(|&width| {
                let cfg = StreamConfig {
                    policy: WindowPolicy::ByTime { width },
                    params: opts.params,
                    ..StreamConfig::for_scenario(&scenario)
                };
                let results = methods
                    .iter()
                    .map(|&method| {
                        let engine = method.engine(&cfg.params);
                        let report = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
                        report.assert_conservation();
                        MethodResult {
                            method,
                            measures: Measures {
                                matched: report.matched(),
                                total_utility: report.total_utility(),
                                total_distance: report.total_distance(),
                                total_epsilon: report.total_epsilon(),
                                publications: report.windows.iter().map(|w| w.publications).sum(),
                                rounds: report.windows.iter().map(|w| w.rounds).sum(),
                            },
                            elapsed: report.drive_time(),
                            p95_latency_s: Some(report.p95_latency()),
                        }
                    })
                    .collect();
                SweepPoint { x: width, results }
            })
            .collect();
        sweeps.push((dataset, points));
    }

    let mut tables = Vec::new();
    for (dataset, points) in &sweeps {
        for &mk in spec.measures {
            tables.push(render_panel(spec, *dataset, mk, points));
        }
    }
    FigureOutput {
        id: spec.id.to_string(),
        caption: spec.caption.to_string(),
        sweeps,
        tables,
    }
}

/// Extracts one measure series per method into a [`Table`].
fn render_panel(
    spec: &FigureSpec,
    dataset: Dataset,
    mk: MeasureKind,
    points: &[SweepPoint],
) -> Table {
    let methods = spec.methods.methods();
    let mut rows = Vec::new();
    for &method in &methods {
        // Relative deviations are defined for private methods only.
        if matches!(mk, MeasureKind::RdUtility | MeasureKind::RdDistance)
            && method.non_private_counterpart().is_none()
        {
            continue;
        }
        let series: Vec<f64> = points
            .iter()
            .map(|p| measure_value(p, method, mk))
            .collect();
        rows.push((method.name().to_string(), series));
    }
    Table {
        title: format!("{} [{}] {}", spec.id, dataset, mk.title()),
        x_label: spec.sweep.axis().to_string(),
        x_values: points.iter().map(|p| format_x(p.x)).collect(),
        rows,
    }
}

fn format_x(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x}")
    }
}

/// Reads one measure for one method out of a sweep point.
pub fn measure_value(point: &SweepPoint, method: Method, mk: MeasureKind) -> f64 {
    let r = point.result(method).expect("method was run");
    match mk {
        MeasureKind::TimeMs => r.elapsed.as_secs_f64() * 1e3,
        MeasureKind::AvgUtility => r.measures.avg_utility(),
        MeasureKind::AvgDistance => r.measures.avg_distance(),
        MeasureKind::P95LatencyS => r
            .p95_latency_s
            .expect("p95 latency is only produced by streaming sweeps"),
        MeasureKind::RdUtility | MeasureKind::RdDistance => {
            let np = method
                .non_private_counterpart()
                .expect("RD requires a private method");
            let np_res = point
                .result(np)
                .unwrap_or_else(|| panic!("counterpart {np} missing from sweep"));
            match mk {
                MeasureKind::RdUtility => relative_deviation_utility(&np_res.measures, &r.measures),
                _ => relative_deviation_distance(&np_res.measures, &r.measures),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::find;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            scale: 0.06, // 60-task batches
            n_batches: 2,
            params: RunParams::default(),
            n_seeds: 1,
            parallel: true,
        }
    }

    #[test]
    fn scenario_for_applies_the_sweep() {
        let spec = find("fig07").unwrap();
        let sc = scenario_for(&spec, Dataset::Chengdu, 1.7, &tiny_opts());
        assert_eq!(sc.worker_range, 1.7);
        assert_eq!(sc.batch_size, 60);
        let spec = find("fig17").unwrap();
        let sc = scenario_for(&spec, Dataset::Normal, 0.625, &tiny_opts());
        assert_eq!(sc.budget_range, (0.5, 0.75));
    }

    #[test]
    fn run_figure_produces_panel_tables() {
        let spec = find("fig09").unwrap();
        // Shrink the sweep through a custom run: just assert structure on
        // the real (small-scale) run.
        let out = run_figure(&spec, &tiny_opts());
        assert_eq!(out.id, "fig09");
        assert_eq!(out.tables.len(), 2); // avg utility + RD utility
        let avg = &out.tables[0];
        assert_eq!(avg.x_values, vec!["1", "1.5", "2", "2.5", "3"]);
        assert_eq!(avg.rows.len(), 7);
        let rd = &out.tables[1];
        assert_eq!(rd.rows.len(), 3); // PUCE, PDCE, PGT only
        for (_, series) in &avg.rows {
            assert_eq!(series.len(), 5);
            assert!(series.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn streaming_figure_runs_and_its_claims_hold_at_smoke_scale() {
        // The figs1 streaming sweep goes through the same registry /
        // runner / expectations path as the batch figures, so
        // `--verify` pins streaming behaviour too.
        let spec = find("figs1").unwrap();
        let opts = RunOptions {
            scale: 0.05,
            ..tiny_opts()
        };
        let out = run_figure(&spec, &opts);
        assert_eq!(out.id, "figs1");
        assert_eq!(out.tables.len(), 2); // avg utility + p95 latency
        for table in &out.tables {
            assert_eq!(table.rows.len(), 3, "PUCE, PGT, GRD");
            for (_, series) in &table.rows {
                assert_eq!(series.len(), 5);
                assert!(series.iter().all(|v| v.is_finite()));
            }
        }
        let claims = crate::expectations::check(&spec, &out);
        assert!(!claims.is_empty(), "the streaming sweep must be gated");
        for c in &claims {
            assert!(c.holds, "claim {} failed: {}", c.id, c.detail);
        }
    }

    #[test]
    fn seed_replication_merges_measures() {
        let spec = find("fig05").unwrap();
        let sc = scenario_for(&spec, Dataset::Chengdu, 4.5, &tiny_opts());
        let one = run_scenario(&sc, &[Method::Puce], &tiny_opts());
        let three = run_scenario(
            &sc,
            &[Method::Puce],
            &RunOptions {
                n_seeds: 3,
                ..tiny_opts()
            },
        );
        // Three replications merge roughly three times the matches; the
        // averaged measures stay on the same scale.
        assert!(three[0].measures.matched >= 2 * one[0].measures.matched);
        let a = one[0].measures.avg_utility();
        let b = three[0].measures.avg_utility();
        assert!((a - b).abs() < 1.0, "avg utilities {a} vs {b}");
    }

    #[test]
    fn parallel_and_sequential_agree_on_measures() {
        let spec = find("fig05").unwrap();
        let sc = scenario_for(&spec, Dataset::Chengdu, 4.5, &tiny_opts());
        let methods = [Method::Puce, Method::Pgt];
        let par = run_scenario(
            &sc,
            &methods,
            &RunOptions {
                parallel: true,
                ..tiny_opts()
            },
        );
        let seq = run_scenario(
            &sc,
            &methods,
            &RunOptions {
                parallel: false,
                ..tiny_opts()
            },
        );
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.method, b.method);
            assert_eq!(a.measures, b.measures);
        }
    }
}
