//! Rendering: ASCII tables mirroring the paper's series, and JSON
//! export for downstream plotting.

use crate::runner::{FigureOutput, Table};
use std::fmt::Write as _;
use std::path::Path;

/// Renders one panel as an aligned ASCII table.
pub fn render_table(table: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {}", table.title);
    let name_w = table
        .rows
        .iter()
        .map(|(n, _)| n.len())
        .chain([table.x_label.len()])
        .max()
        .unwrap_or(8)
        .max(6);
    let col_w = 10usize;

    let _ = write!(out, "{:<name_w$} |", table.x_label);
    for x in &table.x_values {
        let _ = write!(out, " {x:>col_w$}");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{}-+{}",
        "-".repeat(name_w),
        "-".repeat((col_w + 1) * table.x_values.len())
    );
    for (name, series) in &table.rows {
        let _ = write!(out, "{name:<name_w$} |");
        for v in series {
            let _ = write!(out, " {:>col_w$}", format_value(*v));
        }
        let _ = writeln!(out);
    }
    out
}

/// Compact numeric formatting: 4 significant-ish digits, no trailing
/// noise.
fn format_value(v: f64) -> String {
    if !v.is_finite() {
        return "-".to_string();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.1 || a == 0.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders a whole figure (caption + every panel).
pub fn render_figure(fig: &FigureOutput) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} — {}", fig.id, fig.caption);
    let _ = writeln!(out);
    for t in &fig.tables {
        out.push_str(&render_table(t));
        let _ = writeln!(out);
    }
    out
}

/// Writes a figure's raw sweep data as JSON next to the rendered text.
/// Returns the JSON path.
pub fn write_json(fig: &FigureOutput, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("{}.json", fig.id));
    std::fs::write(&json_path, serde_json::to_vec_pretty(fig)?)?;
    let txt_path = dir.join(format!("{}.txt", fig.id));
    std::fs::write(&txt_path, render_figure(fig))?;
    Ok(json_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        Table {
            title: "fig99 [chengdu] average utility".into(),
            x_label: "worker range".into(),
            x_values: vec!["0.8".into(), "1.4".into(), "2".into()],
            rows: vec![
                ("PUCE".into(), vec![3.5012, 3.102, 2.75]),
                ("PGT".into(), vec![3.4, 3.3, 3.35]),
            ],
        }
    }

    #[test]
    fn ascii_table_is_aligned_and_complete() {
        let s = render_table(&sample_table());
        assert!(s.contains("## fig99 [chengdu] average utility"));
        assert!(s.contains("PUCE"));
        assert!(s.contains("PGT"));
        assert!(s.contains("3.501"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
        // Rows align: same length for the two data lines.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(1234.56), "1235");
        assert_eq!(format_value(56.78), "56.8");
        assert_eq!(format_value(3.1417), "3.142");
        assert_eq!(format_value(0.012345), "0.0123");
        assert_eq!(format_value(0.0), "0.000");
        assert_eq!(format_value(-2.5), "-2.500");
        assert_eq!(format_value(f64::NAN), "-");
    }

    #[test]
    fn json_roundtrip_to_disk() {
        let fig = FigureOutput {
            id: "figtest".into(),
            caption: "smoke".into(),
            sweeps: vec![],
            tables: vec![sample_table()],
        };
        let dir = std::env::temp_dir().join("dpta_report_test");
        let path = write_json(&fig, &dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"figtest\""));
        assert!(dir.join("figtest.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
