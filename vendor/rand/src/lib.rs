//! Offline shim of the `rand` 0.8 API subset used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly what the workspace calls: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen_range` (half-open ranges over floats and integers),
//! `gen_bool` and `gen`. The generator is xoshiro256++ behind a
//! SplitMix64 seed expansion — deterministic, high-quality, and stable
//! across platforms. It makes no attempt to match upstream `rand`'s
//! stream; all in-repo golden values are pinned against this shim.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable constructors (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// A uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: the
                // spans in this workspace are tiny relative to 2^64, so
                // modulo bias is far below statistical relevance, but use
                // widening multiply anyway for uniformity.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                // 53 (resp. 24) explicit mantissa bits of uniformity.
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = low + (high - low) * unit;
                if v < high { v } else { low }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// One draw from the type's standard distribution.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] exactly like upstream `rand`.
pub trait Rng: RngCore {
    /// Uniform draw from the half-open range `[low, high)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of [0, 1]"
        );
        f64::standard(self) < p
    }

    /// One draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with SplitMix64 seed expansion — the shim's stand-in
    /// for upstream's `StdRng` (which is explicitly not portable across
    /// versions anyway).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_hit_bounds_only_within() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
            let i = rng.gen_range(0usize..7);
            assert!(i < 7);
            let n = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&n));
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0..100.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 5.0 && hi > 95.0, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0usize..7)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((8_000..12_000).contains(&c), "bucket {i}: {c}");
        }
    }
}
