//! Offline shim of the `proptest` API subset used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! provides randomized property testing behind proptest's names: the
//! [`proptest!`] macro over `name in strategy` bindings, range /
//! tuple / [`collection::vec`] / [`mod@bool`] strategies,
//! [`ProptestConfig`], and `prop_assert!` / `prop_assert_eq!`. There is
//! no shrinking: a failing case panics immediately, printing the case
//! number and seed so the run is reproducible (cases derive
//! deterministically from the test's configuration, so re-running the
//! test replays the same inputs).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
pub use rand::Rng as _;
use std::ops::Range;

/// Per-test configuration (case count only, in this shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Values with a canonical whole-domain strategy (the subset of
/// proptest's `Arbitrary` this workspace uses).
pub trait ArbitraryValue {
    /// One draw covering the type's whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::gen_bool(rng, 0.5)
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::gen(rng)
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::gen::<u64>(rng) as u32
    }
}

impl ArbitraryValue for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::gen::<u64>(rng) as usize
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// A strategy over the whole domain of `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec<S::Value>` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.min >= self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A vec-length specification: an exact count or an inclusive-exclusive
/// range, mirroring proptest's `SizeRange` conversions.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// Uniform `true` / `false`.
    pub struct Any;

    /// Uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// `true` with the given probability.
    pub struct Weighted(f64);

    /// Strategy producing `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weight out of [0, 1]");
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(self.0)
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Seeds the per-test RNG. Deterministic per (test name, case index) so
/// failures reproduce; the name hash keeps different tests decorrelated.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5eed))
}

/// Property assertion (panics immediately in this shim — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Case precondition: skips the current case when the condition fails
/// (the case body runs inside a closure, so `return` exits it only).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// The property-test entry macro: wraps each `fn name(arg in strategy)`
/// in a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        $(#[test] fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default())
            $(#[test] fn $name($($arg in $strategy),+) $body)*);
    };
    (@with_config ($config:expr)
        $(#[test] fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            // The closure-per-case gives `prop_assume!` an early-return
            // scope; clippy flags it as redundant because it cannot see
            // that.
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    (|| $body)();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(
            x in 1usize..7,
            f in -3.0f64..5.0,
            pair in (0usize..8, 0.0f64..1.0),
        ) {
            prop_assert!((1..7).contains(&x));
            prop_assert!((-3.0..5.0).contains(&f));
            prop_assert!(pair.0 < 8 && (0.0..1.0).contains(&pair.1));
        }

        #[test]
        fn vec_sizes(
            exact in crate::collection::vec(0.0f64..10.0, 25),
            ranged in crate::collection::vec(crate::bool::weighted(0.7), 0..40),
            any in crate::collection::vec(crate::bool::ANY, 5),
        ) {
            prop_assert_eq!(exact.len(), 25);
            prop_assert!(ranged.len() < 40);
            prop_assert_eq!(any.len(), 5);
        }
    }

    #[test]
    fn weighted_bias_shows_up() {
        let mut rng = crate::test_rng("weighted_bias", 0);
        let w = crate::bool::weighted(0.9);
        let hits = (0..1000).filter(|_| w.generate(&mut rng)).count();
        assert!(hits > 800, "got {hits}");
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let a: Vec<usize> = (0..10)
            .map(|c| (0usize..100).generate(&mut crate::test_rng("t", c)))
            .collect();
        let b: Vec<usize> = (0..10)
            .map(|c| (0usize..100).generate(&mut crate::test_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
