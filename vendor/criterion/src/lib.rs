//! Offline shim of the `criterion` API subset used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! implements a small wall-clock benchmark harness behind criterion's
//! names: [`Criterion`], benchmark groups with `sample_size` /
//! `warm_up_time` / `measurement_time`, `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark warms up, then collects one
//! timing sample per batch of iterations and reports min / median /
//! mean. `cargo bench -- --test` (the flag Cargo passes for
//! `cargo test --benches`) runs every body once and skips measurement.
//!
//! Two environment variables extend the upstream API for CI use:
//!
//! * `CRITERION_QUICK=1` — quick mode: warm-up and measurement windows
//!   are clamped to 50 ms / 200 ms and sample counts capped at 5, so a
//!   whole bench binary finishes in seconds. Timings are noisier; the
//!   bench-trajectory gate compensates with a generous (3×) regression
//!   threshold.
//! * `CRITERION_JSON=<path>` — appends one JSON object per benchmark to
//!   `<path>` (`{"id": ..., "median_ns": ..., "min_ns": ...,
//!   "mean_ns": ..., "samples": ..., "iters": ...}`), the
//!   machine-readable feed of the `bench_gate` binary.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Top-level harness handle, passed to every benchmark function.
pub struct Criterion {
    test_mode: bool,
    quick: bool,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo forwards `--test` when benches run under `cargo test`;
        // `--bench` is forwarded on `cargo bench`. Anything unknown is
        // ignored, matching criterion's tolerant CLI.
        let test_mode = std::env::args().any(|a| a == "--test");
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
        let json_path = std::env::var("CRITERION_JSON")
            .ok()
            .filter(|p| !p.is_empty());
        Criterion {
            test_mode,
            quick,
            json_path,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            test_mode: self.test_mode,
            quick: self.quick,
            json_path: self.json_path.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    quick: bool,
    json_path: Option<String>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time spent running the body before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for measurement samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        self.run(&label, |b| f(b));
        self
    }

    /// Benchmarks a closure that receives `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        self.run(&label, |b| f(b, input));
        self
    }

    /// Ends the group (printing is per-benchmark; nothing buffered).
    pub fn finish(&mut self) {}

    fn run(&self, label: &str, mut body: impl FnMut(&mut Bencher)) {
        let (warm_up, measurement, samples) = if self.quick {
            (
                self.warm_up_time.min(Duration::from_millis(50)),
                self.measurement_time.min(Duration::from_millis(200)),
                self.sample_size.min(5),
            )
        } else {
            (self.warm_up_time, self.measurement_time, self.sample_size)
        };
        let mut bencher = Bencher {
            mode: if self.test_mode {
                Mode::TestOnce
            } else {
                Mode::Measure {
                    warm_up,
                    measurement,
                    samples,
                }
            },
            sample_times: Vec::new(),
            iters_per_sample: 0,
        };
        body(&mut bencher);
        if self.test_mode {
            eprintln!("bench {label}: ok (test mode)");
            return;
        }
        bencher.report(label, self.json_path.as_deref());
    }
}

enum Mode {
    TestOnce,
    Measure {
        warm_up: Duration,
        measurement: Duration,
        samples: usize,
    },
}

/// Timing driver handed to each benchmark body.
pub struct Bencher {
    mode: Mode,
    sample_times: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::TestOnce => {
                std::hint::black_box(routine());
            }
            Mode::Measure {
                warm_up,
                measurement,
                samples,
            } => {
                // Warm-up: discover a per-sample iteration count such
                // that one sample costs roughly measurement/samples.
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < warm_up {
                    std::hint::black_box(routine());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
                let target = measurement.as_secs_f64() / samples as f64;
                let iters = ((target / per_iter.max(1e-9)).round() as u64).max(1);

                self.iters_per_sample = iters;
                self.sample_times.clear();
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(routine());
                    }
                    self.sample_times.push(start.elapsed());
                }
            }
        }
    }

    fn report(&self, label: &str, json_path: Option<&str>) {
        if self.sample_times.is_empty() {
            eprintln!("bench {label}: no samples (body never called iter?)");
            return;
        }
        let iters = self.iters_per_sample.max(1) as f64;
        let mut per_iter: Vec<f64> = self
            .sample_times
            .iter()
            .map(|d| d.as_secs_f64() / iters)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        eprintln!(
            "bench {label}: min {} / median {} / mean {}  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            per_iter.len(),
            self.iters_per_sample,
        );
        if let Some(path) = json_path {
            // One self-contained object per line; labels never contain
            // quotes or backslashes (function/parameter names), so no
            // escaping is needed beyond what `fmt_json_label` rejects.
            let line = format!(
                "{{\"id\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"mean_ns\":{:.1},\
                 \"samples\":{},\"iters\":{}}}\n",
                fmt_json_label(label),
                median * 1e9,
                min * 1e9,
                mean * 1e9,
                per_iter.len(),
                self.iters_per_sample,
            );
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(e) = written {
                eprintln!("bench {label}: could not append to {path}: {e}");
            }
        }
    }
}

/// Escapes the two JSON-significant characters a pathological label
/// could contain; everything else passes through.
fn fmt_json_label(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Labels a benchmark by function name and parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Labels a benchmark by parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_samples() {
        let mut c = Criterion {
            test_mode: false,
            quick: false,
            json_path: None,
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(15));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 3, "body must run during warm-up and samples");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            quick: false,
            json_path: None,
        };
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 1), &7u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x
            })
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn quick_mode_emits_json_lines() {
        let path =
            std::env::temp_dir().join(format!("criterion_shim_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion {
            test_mode: false,
            quick: true,
            json_path: Some(path.to_string_lossy().into_owned()),
        };
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        group.bench_function("json", |b| b.iter(|| 1 + 1));
        group.finish();
        let text = std::fs::read_to_string(&path).expect("json file written");
        assert!(text.contains("\"id\":\"shim/json\""), "got: {text}");
        assert!(text.contains("\"median_ns\":"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn id_formats() {
        assert_eq!(
            BenchmarkId::new("PUCE", "chengdu").to_string(),
            "PUCE/chengdu"
        );
        assert_eq!(BenchmarkId::from_parameter(60).to_string(), "60");
    }
}
