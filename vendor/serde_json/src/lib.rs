//! Offline shim of the `serde_json` API subset used by this workspace:
//! rendering a [`serde::Value`] tree as (pretty) JSON text, plus a small
//! parser so round-trips are testable. Numbers that are mathematically
//! integral print without a decimal point (except `-0.0`, which keeps
//! its sign bit); a hand-built non-finite `Value::Number` prints as
//! `null`, but the float `Serialize` impls tag non-finite values as
//! strings before they reach this layer, so snapshots round-trip
//! exactly.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt::Write as _;

/// JSON rendering/parsing failure. Converts into `std::io::Error` so
/// call sites can use `?` inside I/O code.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as pretty JSON bytes (the workspace's export path).
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Infinity
    } else if n == 0.0 && n.is_sign_negative() {
        out.push_str("-0.0"); // keep the sign bit: snapshots are bit-exact
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`] tree (used by round-trip tests).
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("bad array at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error(format!("bad object at byte {pos}"))),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Number)
                .ok_or_else(|| Error(format!("bad number at byte {start}")))
        }
        _ => Err(Error(format!("unexpected input at byte {pos}"))),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("bad literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or_else(|| Error("open escape".into()))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| Error("bad \\u escape".into()))?;
                        *pos += 4;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(Error(format!("bad escape \\{}", other as char))),
                }
            }
            c => {
                // Re-assemble multi-byte UTF-8 sequences.
                let width = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let start = *pos - 1;
                *pos = start + width;
                let s = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| Error("invalid UTF-8".into()))?;
                out.push_str(s);
            }
        }
    }
    Err(Error("unterminated string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        // `Serialize` for floats tags non-finite values as strings.
        assert_eq!(to_string(&f64::NAN).unwrap(), "\"NaN\"");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "\"inf\"");
        // Negative zero keeps its sign bit through text.
        assert_eq!(to_string(&-0.0f64).unwrap(), "-0.0");
        assert_eq!(from_str("-0.0").unwrap(), serde::Value::Number(-0.0));
    }

    #[test]
    fn pretty_object_layout() {
        let v: Vec<(String, Vec<f64>)> = vec![("PUCE".into(), vec![1.0, 2.5])];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "[\n  [\n    \"PUCE\",\n    [\n      1,\n      2.5\n    ]\n  ]\n]"
        );
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"id": "fig07", "xs": [1, 2.5, -3e2], "ok": true, "none": null}"#;
        let v = from_str(text).unwrap();
        assert_eq!(v.get("id"), Some(&Value::String("fig07".into())));
        assert_eq!(
            v.get("xs"),
            Some(&Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.5),
                Value::Number(-300.0)
            ]))
        );
        let rendered = to_string(&Render(&v)).unwrap();
        assert_eq!(from_str(&rendered).unwrap(), v);
    }

    /// Wrapper: render an already-built tree through the Serialize path.
    struct Render<'a>(&'a Value);

    impl serde::Serialize for Render<'_> {
        fn serialize_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let s = "héllo \u{1F600} \t end";
        let rendered = to_string(s).unwrap();
        assert_eq!(from_str(&rendered).unwrap(), Value::String(s.to_string()));
    }
}
