//! Offline shim of serde's `#[derive(Serialize, Deserialize)]`.
//!
//! The build environment has no access to crates.io (so no `syn` /
//! `quote` either); this macro parses the item with a small hand-rolled
//! token walker and emits impls of the shim traits in `serde`:
//!
//! * named-field structs → externally untagged objects;
//! * enums with unit variants → the variant name as a string;
//! * enums with struct variants → externally tagged single-key objects;
//!
//! which mirrors upstream serde's default representation for every type
//! this workspace derives. Tuple structs, tuple variants and generic
//! items are rejected with a compile error naming the offender.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed `name: Type` field.
struct Field {
    name: String,
    ty: String,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

/// The parsed item shape.
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the shim `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::serialize_value(&self.{n})),",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),",
                        v = v.name
                    ),
                    Some(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), \
                                     ::serde::Serialize::serialize_value({n})),",
                                    n = f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(\
                                 \"{v}\".to_string(), \
                                 ::serde::Value::Object(vec![{pushes}]),\
                             )]),",
                            v = v.name,
                            binds = binds.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Serialize impl parses")
}

/// Derives the shim `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{n}: <{t} as ::serde::Deserialize>::deserialize_value(\
                             v.get(\"{n}\").ok_or_else(|| ::serde::Error(\
                                 \"missing field `{n}` in {name}\".to_string()))?,\
                         )?,",
                        n = f.name,
                        t = f.ty
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),", v = v.name))
                .collect();
            let string_arm = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         _ => Err(::serde::Error::expected(\"{name} variant\", v)),\n\
                     }},"
                )
            };
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{n}: <{t} as ::serde::Deserialize>::deserialize_value(\
                                     inner.get(\"{n}\").ok_or_else(|| ::serde::Error(\
                                         \"missing field `{n}` in {name}::{v}\"\
                                         .to_string()))?,\
                                 )?,",
                                n = f.name,
                                t = f.ty,
                                v = v.name
                            )
                        })
                        .collect();
                    format!("\"{v}\" => Ok({name}::{v} {{ {inits} }}),", v = v.name)
                })
                .collect();
            let object_arm = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             _ => Err(::serde::Error::expected(\"{name} variant\", v)),\n\
                         }}\n\
                     }},"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             {string_arm}\n\
                             {object_arm}\n\
                             _ => Err(::serde::Error::expected(\"{name}\", v)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Deserialize impl parses")
}

// ---- token walking ---------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility up to the `struct` / `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // #[...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string()
            }
            Some(other) => panic!("serde shim derive: unexpected token {other}"),
            None => panic!("serde shim derive: no struct/enum found"),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive: generic item `{name}` is not supported")
        }
        other => panic!(
            "serde shim derive: `{name}` must have a braced body \
             (tuple/unit items unsupported), got {other:?}"
        ),
    };

    if kind == "struct" {
        Item::Struct {
            name,
            fields: parse_fields(body),
        }
    } else {
        Item::Enum {
            name,
            variants: parse_variants(body),
        }
    }
}

/// Parses `attr* vis? name: Type,` sequences from a brace group.
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attribute
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => panic!(
                        "serde shim derive: expected `:` after field `{name}`, \
                         got {other:?} (tuple structs unsupported)"
                    ),
                }
                // Collect the type: everything up to a comma outside angle
                // brackets (commas inside parens/brackets are whole groups).
                let mut depth = 0i32;
                let mut ty_tokens: Vec<TokenTree> = Vec::new();
                while let Some(tok) = tokens.get(i) {
                    match tok {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            break;
                        }
                        _ => {}
                    }
                    ty_tokens.push(tok.clone());
                    i += 1;
                }
                i += 1; // past the comma (or end)
                let ty = TokenStream::from_iter(ty_tokens).to_string();
                fields.push(Field { name, ty });
            }
            other => panic!("serde shim derive: unexpected field token {other}"),
        }
    }
    fields
}

/// Parses `attr* Name ({...})?,` variant sequences from a brace group.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attribute
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let fields = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        Some(parse_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!(
                            "serde shim derive: tuple variant `{name}` is not \
                             supported — use a struct variant"
                        )
                    }
                    _ => None,
                };
                variants.push(Variant { name, fields });
            }
            other => panic!("serde shim derive: unexpected variant token {other}"),
        }
    }
    variants
}
