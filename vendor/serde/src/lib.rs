//! Offline shim of the `serde` API subset used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the two traits the workspace derives — [`Serialize`] and
//! [`Deserialize`] — over a self-describing [`Value`] tree instead of
//! upstream serde's visitor machinery. `#[derive(Serialize,
//! Deserialize)]` comes from the sibling `serde_derive` shim and maps
//! structs to objects and enums to externally-tagged values, exactly
//! like upstream's default representation. The sibling `serde_json`
//! shim renders a [`Value`] as JSON text.
//!
//! Only the shapes the workspace actually uses are covered: named-field
//! structs, unit enum variants, struct enum variants, and the std types
//! below. Deliberately absent: `std::time::Duration` — a time unit is a
//! domain decision, so use sites serialize durations explicitly.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree: the shim's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected, and where.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {got:?}"))
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// This value as a data tree.
    fn serialize_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds the value from a data tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitives ------------------------------------------------------

macro_rules! impl_for_ints {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_for_ints!(u8, u16, u32, i8, i16, i32);

/// 64-bit integers may exceed the 2^53 window in which `f64` is exact
/// (e.g. hashed bit patterns), so they serialize as a decimal string
/// beyond it and accept either representation back.
macro_rules! impl_for_wide_ints {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                const EXACT: u128 = 1 << 53;
                if (*self as i128).unsigned_abs() <= EXACT {
                    Value::Number(*self as f64)
                } else {
                    Value::String(self.to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    Value::String(s) => s
                        .parse()
                        .map_err(|_| Error(format!("unparseable {} {s:?}", stringify!($t)))),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_for_wide_ints!(u64, usize, i64, isize);

macro_rules! impl_for_floats {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                // JSON has no non-finite literals, so infinities and NaN
                // serialize as tagged strings instead of collapsing to
                // `null` — session snapshots carry `f64::INFINITY`
                // capacities that must survive a round-trip exactly.
                if self.is_finite() {
                    Value::Number(*self as f64)
                } else if self.is_nan() {
                    Value::String("NaN".to_string())
                } else if *self > 0.0 {
                    Value::String("inf".to_string())
                } else {
                    Value::String("-inf".to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN), // legacy lossy encoding
                    Value::String(s) => match s.as_str() {
                        "NaN" => Ok(<$t>::NAN),
                        "inf" => Ok(<$t>::INFINITY),
                        "-inf" => Ok(<$t>::NEG_INFINITY),
                        _ => Err(Error(format!("unparseable float {s:?}"))),
                    },
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_for_floats!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ---- std compounds ---------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

macro_rules! impl_for_tuples {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => Ok(($($t::deserialize_value(
                        items.get($n).ok_or_else(|| Error::expected("longer tuple", v))?,
                    )?,)+)),
                    other => Err(Error::expected("tuple array", other)),
                }
            }
        }
    )*};
}

impl_for_tuples! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

/// Map keys render as JSON object keys via `Display` and parse back via
/// `FromStr` — enough for the integer- and string-keyed maps here.
impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: std::str::FromStr + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| {
                    let key = k
                        .parse()
                        .map_err(|_| Error(format!("unparseable map key {k:?}")))?;
                    Ok((key, V::deserialize_value(v)?))
                })
                .collect(),
            other => Err(Error::expected("map object", other)),
        }
    }
}

impl<K: fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.serialize_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Object(fields)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: std::str::FromStr + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| {
                    let key = k
                        .parse()
                        .map_err(|_| Error(format!("unparseable map key {k:?}")))?;
                    Ok((key, V::deserialize_value(v)?))
                })
                .collect(),
            other => Err(Error::expected("map object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize_value(&7u32.serialize_value()).unwrap(), 7);
        assert_eq!(
            f64::deserialize_value(&2.5f64.serialize_value()).unwrap(),
            2.5
        );
        assert!(bool::deserialize_value(&true.serialize_value()).unwrap());
        let s = "hi".to_string();
        assert_eq!(String::deserialize_value(&s.serialize_value()).unwrap(), s);
    }

    #[test]
    fn compounds_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        assert_eq!(
            Vec::<Option<u32>>::deserialize_value(&v.serialize_value()).unwrap(),
            v
        );
        let t = (1.5f64, 2.5f64);
        assert_eq!(
            <(f64, f64)>::deserialize_value(&t.serialize_value()).unwrap(),
            t
        );
        let mut m = BTreeMap::new();
        m.insert(4u32, vec![0.5f64, 1.0]);
        assert_eq!(
            BTreeMap::<u32, Vec<f64>>::deserialize_value(&m.serialize_value()).unwrap(),
            m
        );
    }

    #[test]
    fn wide_ints_survive_past_2_pow_53() {
        let big = u64::MAX - 12;
        assert_eq!(big.serialize_value(), Value::String(big.to_string()));
        assert_eq!(u64::deserialize_value(&big.serialize_value()).unwrap(), big);
        // Small values keep the plain-number representation.
        assert_eq!(7u64.serialize_value(), Value::Number(7.0));
        let neg = i64::MIN + 3;
        assert_eq!(i64::deserialize_value(&neg.serialize_value()).unwrap(), neg);
    }

    #[test]
    fn non_finite_floats_round_trip_as_strings() {
        for v in [f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(f64::deserialize_value(&v.serialize_value()).unwrap(), v);
        }
        assert!(f64::deserialize_value(&f64::NAN.serialize_value())
            .unwrap()
            .is_nan());
        // Legacy `null` still reads back as NaN.
        assert!(f64::deserialize_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn deque_set_and_hashmap_round_trip() {
        let q: VecDeque<u32> = [1, 2, 3].into_iter().collect();
        assert_eq!(
            VecDeque::<u32>::deserialize_value(&q.serialize_value()).unwrap(),
            q
        );
        let s: BTreeSet<u32> = [5, 1, 9].into_iter().collect();
        assert_eq!(
            BTreeSet::<u32>::deserialize_value(&s.serialize_value()).unwrap(),
            s
        );
        let mut m: HashMap<u32, f64> = HashMap::new();
        m.insert(4, 0.5);
        m.insert(11, 2.0);
        assert_eq!(
            HashMap::<u32, f64>::deserialize_value(&m.serialize_value()).unwrap(),
            m
        );
    }

    #[test]
    fn object_get() {
        let v = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(v.get("a"), Some(&Value::Number(1.0)));
        assert_eq!(v.get("b"), None);
    }
}
