//! Ride-hailing: the paper's end-to-end pipeline on the Chengdu
//! simulator — a day of orders, batched by timestamp, served by ten
//! circularly-reused taxi groups (Section VII-B), assigned by PUCE,
//! PDCE and PGT.
//!
//! ```text
//! cargo run --release --example ride_hailing
//! ```

use dpta::prelude::*;
use dpta::workloads::chengdu::ChengduSim;
use std::time::Instant;

fn main() {
    // Simulate the trace (scaled down from the real 259k orders / 30k
    // taxis so the example finishes in seconds; bump these to taste).
    let sim = ChengduSim::new(2016);
    let n_orders = 2_000;
    let batch_size = 400;

    let scenario = Scenario {
        dataset: Dataset::Chengdu,
        batch_size,
        n_batches: n_orders / batch_size,
        worker_task_ratio: 2.0,
        ..Scenario::default()
    };
    let batches = scenario.batches();

    // Show what the simulator produced.
    let orders = sim.orders(n_orders);
    let rush = orders
        .iter()
        .filter(|o| (7.0 * 3600.0..10.0 * 3600.0).contains(&o.release_time))
        .count();
    println!(
        "simulated {} orders (morning rush 07-10h: {} = {:.0}%), {} batches of {} tasks",
        orders.len(),
        rush,
        100.0 * rush as f64 / orders.len() as f64,
        batches.len(),
        batch_size
    );
    println!(
        "mean tasks inside a {} km service area: {:.2}\n",
        scenario.worker_range,
        batches.iter().map(|b| b.mean_tasks_in_range()).sum::<f64>() / batches.len() as f64
    );

    let params = RunParams::default();
    for method in [Method::Puce, Method::Pdce, Method::Pgt, Method::GeoI] {
        let started = Instant::now();
        let mut total = Measures::zero();
        for inst in &batches {
            let outcome = method.run(inst, &params);
            total.merge(&measure(
                inst,
                &outcome,
                params.alpha,
                params.beta,
                method.is_private(),
            ));
        }
        let elapsed = started.elapsed();
        println!(
            "{:<5} matched {:>5}/{} orders | avg utility {:>6.3} | avg pickup distance {:>5.3} km | {:>6.1} ms",
            method.name(),
            total.matched,
            n_orders,
            total.avg_utility(),
            total.avg_distance(),
            elapsed.as_secs_f64() * 1e3,
        );
    }

    println!(
        "\nThe shapes to expect (paper, Sec. VII-D): PGT runs fastest; PDCE \
         travels least; PUCE edges PDCE on utility."
    );
}
