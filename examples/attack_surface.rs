//! Quantifying the paper's closing warning (Section VIII): "if the
//! service area of a worker is small enough and the quantity of tasks
//! in this area is large enough, attackers can locate the worker's
//! position through trilateration".
//!
//! This example runs PUCE and the one-shot GEO-I baseline on the same
//! dense batch, then plays the adversary: task locations are public and
//! every effective obfuscated distance sits on the untrusted server, so
//! anyone can fit each worker's location by weighted least squares. We
//! report the localisation error by number of exposed anchors.
//!
//! ```text
//! cargo run --release --example attack_surface
//! ```

use dpta::core::attack::{localization_error, worker_observations};
use dpta::prelude::*;

fn main() {
    // A dense scenario: large service areas over a concentrated task
    // cloud maximise the attack surface.
    let scenario = Scenario {
        dataset: Dataset::Normal,
        batch_size: 600,
        n_batches: 1,
        worker_range: 3.0,
        worker_task_ratio: 1.0,
        ..Scenario::default()
    };
    let inst = &scenario.batches()[0];
    let params = RunParams::default();

    let outcome = Method::Puce.run(inst, &params);
    println!(
        "PUCE on {} tasks x {} workers: {} releases published\n",
        inst.n_tasks(),
        inst.n_workers(),
        outcome.publications()
    );

    // Bucket workers by how many anchors they exposed.
    let mut buckets: Vec<(usize, Vec<f64>)> = vec![
        (3, vec![]),
        (5, vec![]),
        (8, vec![]),
        (12, vec![]),
        (usize::MAX, vec![]),
    ];
    for j in 0..inst.n_workers() {
        let n_anchors = worker_observations(inst, &outcome.board, j).len();
        if n_anchors < 3 {
            continue;
        }
        if let Some(err) = localization_error(inst, &outcome.board, j) {
            let bucket = buckets
                .iter_mut()
                .find(|(cap, _)| n_anchors <= *cap)
                .expect("last bucket is unbounded");
            bucket.1.push(err);
        }
    }

    println!(
        "trilateration against PUCE's board (service radius {} km):",
        3.0
    );
    println!(
        "{:>12} {:>9} {:>16} {:>16}",
        "anchors", "workers", "median err (km)", "p10 err (km)"
    );
    let mut lo = 3;
    for (cap, mut errs) in buckets {
        if errs.is_empty() {
            continue;
        }
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errs[errs.len() / 2];
        let p10 = errs[errs.len() / 10];
        let label = if cap == usize::MAX {
            format!(">{lo}")
        } else {
            format!("{lo}-{cap}")
        };
        println!("{label:>12} {:>9} {median:>16.3} {p10:>16.3}", errs.len());
        lo = cap + 1;
    }

    // Contrast: the GEO-I baseline publishes the (noisy) location
    // itself — the "attack" is just reading the board.
    let geoi = Method::GeoI.run(inst, &params);
    let mut direct: Vec<f64> = (0..inst.n_workers())
        .filter(|&j| geoi.board.ledger(j).publications() > 0)
        .map(|j| {
            // The adversary's best guess under Geo-I is the reported
            // location; its error is exactly the planar-Laplace radius,
            // which we recover by re-deriving the report.
            let err = localization_error(inst, &geoi.board, j);
            err.unwrap_or(f64::NAN)
        })
        .filter(|e| e.is_finite())
        .collect();
    if direct.is_empty() {
        println!("\nGEO-I exposes no per-task anchors: trilateration has nothing to fit —");
        println!("its leakage is the reported location itself (one planar-Laplace draw).");
    } else {
        direct.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "\nGEO-I trilateration median error: {:.3} km",
            direct[direct.len() / 2]
        );
    }

    println!(
        "\nReading: each extra release a worker publishes tightens the
adversary's fix on his true location — the quantitative version of the
paper's Section VIII warning, and the motivation for its future work on
correlation privacy across a service area."
    );
}
