//! PGT as an exact potential game (Section VI): watch the best-response
//! dynamics converge to a pure Nash equilibrium with a strictly
//! increasing potential (Theorem VI.1), and compare the equilibrium
//! against the Theorem VI.3 quality bounds.
//!
//! ```text
//! cargo run --release --example game_convergence
//! ```

use dpta::core::analysis::{game_quality_bounds, potential};
use dpta::core::config::EngineConfig;
use dpta::core::engine::game;
use dpta::dp::SeededNoise;
use dpta::prelude::*;

fn main() {
    let scenario = Scenario {
        dataset: Dataset::Normal,
        batch_size: 120,
        n_batches: 1,
        ..Scenario::default()
    };
    let inst = &scenario.batches()[0];
    println!(
        "instance: {} tasks x {} workers ({:.2} tasks per service area)\n",
        inst.n_tasks(),
        inst.n_workers(),
        inst.mean_tasks_in_range()
    );

    let cfg = EngineConfig {
        track_potential: true,
        ..Method::Pgt.engine_config(&RunParams::default())
    };
    let noise = SeededNoise::new(42);
    let outcome = game::run(inst, &cfg, &noise);

    println!(
        "best-response trace (first 15 of {} accepted moves):",
        outcome.moves.len()
    );
    println!(
        "{:>4} {:>7} {:>12} {:>10} {:>12}",
        "#", "worker", "move", "UT", "potential"
    );
    for (k, m) in outcome.moves.iter().enumerate() {
        if k >= 15 {
            println!("  ... {} more moves", outcome.moves.len() - 15);
            break;
        }
        let from = m.from.map_or("idle".to_string(), |t| format!("t{t}"));
        println!(
            "{:>4} {:>7} {:>12} {:>10.4} {:>12.3}",
            k,
            format!("w{}", m.worker),
            format!("{from}->t{}", m.to),
            m.utility_change,
            m.potential.unwrap(),
        );
    }

    // Theorem VI.1/VI.2: the potential increased strictly at every move
    // (the engine asserts ΔΦ == UT internally when tracking is on), so
    // the dynamics converged to a pure Nash equilibrium.
    let phi_final = potential(inst, &outcome.board, &cfg);
    println!(
        "\nconverged after {} rounds, {} moves; final potential {:.3}",
        outcome.rounds,
        outcome.moves.len(),
        phi_final
    );

    // Verify equilibrium: no worker has a positive best response left.
    let replay = game::run_from(inst, &cfg, &noise, outcome.board.clone());
    assert!(replay.moves.is_empty(), "equilibrium must be stable");
    println!("equilibrium verified: re-running the dynamics makes no move");

    let bounds = game_quality_bounds(inst, &cfg);
    println!(
        "Theorem VI.3 bounds: EPoS <= {}, EPoA >= {}",
        bounds.epos_upper,
        bounds
            .epoa_lower
            .map_or("n/a".to_string(), |v| format!("{v:.3}")),
    );

    let m = measure(inst, &outcome, cfg.alpha, cfg.beta, true);
    println!(
        "equilibrium quality: matched {} tasks, avg utility {:.3}, avg distance {:.3} km",
        m.matched,
        m.avg_utility(),
        m.avg_distance()
    );
}
