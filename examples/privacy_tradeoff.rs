//! The privacy/utility trade-off that motivates the paper: workers
//! *dynamically* trade location privacy for utility. This example runs
//! PUCE under increasing privacy budget groups (Figure 17's sweep) and
//! reports, side by side, the platform utility and the workers'
//! local-DP levels (Theorem V.2).
//!
//! ```text
//! cargo run --release --example privacy_tradeoff
//! ```

use dpta::prelude::*;

fn main() {
    let groups = [
        (0.5, 0.75),
        (0.75, 1.0),
        (1.0, 1.25),
        (1.25, 1.5),
        (1.5, 1.75),
    ];

    println!(
        "{:>14} | {:>7} {:>11} {:>11} | {:>10} {:>10} {:>9}",
        "budget group",
        "matched",
        "avg utility",
        "U_RD vs UCE",
        "eps/worker",
        "LDP level",
        "releases"
    );

    let params = RunParams::default();
    for (lo, hi) in groups {
        let scenario = Scenario {
            dataset: Dataset::Normal,
            batch_size: 300,
            n_batches: 3,
            budget_range: (lo, hi),
            ..Scenario::default()
        };
        let batches = scenario.batches();

        let mut private = Measures::zero();
        let mut non_private = Measures::zero();
        let mut ldp_sum = 0.0;
        let mut ldp_workers = 0usize;
        for inst in &batches {
            let outcome = Method::Puce.run(inst, &params);
            private.merge(&measure(inst, &outcome, params.alpha, params.beta, true));
            let reference = Method::Uce.run(inst, &params);
            non_private.merge(&measure(inst, &reference, params.alpha, params.beta, false));
            for (j, level) in outcome.board.verify_privacy_bounds(inst).iter().enumerate() {
                if outcome.board.ledger(j).publications() > 0 {
                    ldp_sum += level;
                    ldp_workers += 1;
                }
            }
        }

        let rd = relative_deviation_utility(&non_private, &private);
        println!(
            "[{lo:>4.2}, {hi:>4.2}] | {:>7} {:>11.3} {:>11.3} | {:>10.3} {:>10.2} {:>9}",
            private.matched,
            private.avg_utility(),
            rd,
            private.total_epsilon / ldp_workers.max(1) as f64,
            ldp_sum / ldp_workers.max(1) as f64,
            private.publications,
        );
    }

    println!(
        "\nReading the table: bigger budgets buy more accurate comparisons, \
         but each proposal leaks more (higher per-worker LDP level) and its \
         privacy cost grows faster than the accuracy pays back, so average \
         utility falls and the gap to the non-private solution (U_RD) \
         widens — exactly the downward slope of Figure 17."
    );
}
