//! Quickstart: build a tiny PA-TA instance, run every method on it, and
//! inspect assignments, utilities and privacy accounting.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dpta::prelude::*;

fn main() {
    // A hand-made neighbourhood: five delivery tasks, seven couriers
    // with a 2.5 km service radius.
    let tasks: Vec<Task> = [
        (0.5, 0.5, 5.0),
        (1.8, 0.2, 4.0),
        (2.4, 2.2, 6.0),
        (0.3, 2.6, 4.5),
        (3.6, 1.1, 5.5),
    ]
    .iter()
    .map(|&(x, y, v)| Task::new(Point::new(x, y), v))
    .collect();

    let workers: Vec<Worker> = [
        (0.0, 0.0),
        (1.0, 1.2),
        (2.0, 0.4),
        (2.9, 2.0),
        (0.8, 2.4),
        (3.2, 0.6),
        (1.6, 1.9),
    ]
    .iter()
    .map(|&(x, y)| Worker::new(Point::new(x, y), 2.5))
    .collect();

    // Every feasible (task, worker) pair owns a Z = 3 budget vector: the
    // worker may propose up to three times, spending 0.5, then 0.8, then
    // 1.2 of privacy budget (Definition 5).
    let inst = Instance::from_locations(tasks, workers, |_t, _w| {
        BudgetVector::new(vec![0.5, 0.8, 1.2])
    });
    println!(
        "instance: {} tasks x {} workers, {} feasible pairs\n",
        inst.n_tasks(),
        inst.n_workers(),
        inst.feasible_pairs()
    );

    let params = RunParams::default();
    println!(
        "{:<11} {:>8} {:>12} {:>12} {:>7} {:>9}",
        "method", "matched", "avg utility", "avg dist km", "rounds", "releases"
    );
    for method in Method::all() {
        let outcome = method.run(&inst, &params);
        let m = measure(
            &inst,
            &outcome,
            params.alpha,
            params.beta,
            method.is_private(),
        );
        println!(
            "{:<11} {:>8} {:>12.3} {:>12.3} {:>7} {:>9}",
            method.name(),
            m.matched,
            m.avg_utility(),
            m.avg_distance(),
            m.rounds,
            m.publications,
        );
    }

    // The privacy side: what did PUCE leak, per worker?
    let outcome = Method::Puce.run(&inst, &params);
    let bounds = outcome.board.verify_privacy_bounds(&inst);
    println!("\nPUCE local-DP levels per worker (Theorem V.2: r_j * sum of published eps):");
    for (j, level) in bounds.iter().enumerate() {
        println!(
            "  worker {j}: published {:>2} releases, eps total {:>6.2}, LDP level {:>7.2}",
            outcome.board.ledger(j).publications(),
            outcome.board.spent_total(j),
            level
        );
    }
}
