//! The streaming pipeline, end to end: a day of bursty arrivals pushed
//! through the event-driven `StreamSession` API, three engines racing
//! the same stream, worker re-entry recycling the fleet, budget
//! depletion retiring it, the sharded mode agreeing exactly with the
//! unsharded run on shard-disjoint input, and the boundary-halo
//! protocol recovering the cross-shard pairs drop-pairs sharding
//! loses.
//!
//! ```sh
//! cargo run -p dpta --example streaming
//! ```

use dpta::prelude::*;
use dpta::spatial::Aabb;
use dpta::stream::{ArrivalEvent, TaskArrival, WorkerArrival};

fn main() {
    // ── 1. A streamed Table X workload ────────────────────────────────
    // 2×80 tasks arrive in rush-hour bursts; 80 % of the fleet is on
    // duty from t = 0, stragglers trickle in Poisson.
    let arrivals = StreamScenario {
        scenario: Scenario {
            batch_size: 80,
            n_batches: 2,
            ..Scenario::for_dataset(Dataset::Normal)
        },
        task_model: ArrivalModel::Bursty {
            base_rate: 0.05,
            burst_rate: 0.5,
            period: 600.0,
            burst_fraction: 0.25,
        },
        worker_model: ArrivalModel::Poisson { rate: 0.02 },
        initial_worker_fraction: 0.8,
    }
    .stream();
    println!(
        "arrival stream: {} tasks, {} workers over {:.0} s\n",
        arrivals.n_tasks(),
        arrivals.n_workers(),
        arrivals.horizon()
    );

    // ── 2. The session API: push events, advance time, poll outcomes ──
    // This is the production-dispatch shape: events are fed one at a
    // time, `advance_to` declares the event-time watermark, and every
    // decision (assignment, expiry, retirement, worker return) is
    // emitted as a typed outcome as soon as its window settles.
    let cfg = StreamConfig::builder()
        .policy(WindowPolicy::ByTime { width: 300.0 })
        .build()
        .expect("valid streaming configuration");
    for method in [Method::Puce, Method::Pgt, Method::Grd] {
        let engine = method.engine(&cfg.params);
        let mut session = StreamSession::new(engine.as_ref(), cfg.clone());
        let mut live_assignments = 0usize;
        for e in arrivals.events() {
            session.advance_to(e.time()); // everything before `e` is final
            session.push(*e);
            live_assignments += session
                .poll_outcomes()
                .iter()
                .filter(|o| matches!(o, Outcome::Assigned { .. }))
                .count();
        }
        let report = session.close(); // drains the trailing windows
        live_assignments += session
            .poll_outcomes()
            .iter()
            .filter(|o| matches!(o, Outcome::Assigned { .. }))
            .count();
        let (matched, expired, pending) = report.assert_conservation();
        println!("{}", report.render());
        assert_eq!(matched + expired + pending, arrivals.n_tasks());
        assert_eq!(live_assignments, matched, "the outcome log saw every match");
    }

    // ── 3. Worker re-entry: the fleet recycles ────────────────────────
    // A ServiceModel holds matched workers out for a service duration
    // and returns them — same logical id, continuous lifetime budget —
    // so a scarce fleet serves more of the stream than serve-and-leave
    // (ServiceModel::Never, the default) can.
    let engine = Method::Puce.engine(&cfg.params);
    let never = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&arrivals);
    let recycled_cfg = cfg
        .to_builder()
        .service(ServiceModel::Fixed { secs: 240.0 })
        .build()
        .expect("valid re-entry configuration");
    let recycled = StreamDriver::new(engine.as_ref(), recycled_cfg).run(&arrivals);
    println!(
        "PUCE with 240 s services: {} matched over {} completed cycles \
         (serve-and-leave matched {})\n",
        recycled.matched(),
        recycled.returns(),
        never.matched(),
    );
    assert!(recycled.matched() >= never.matched());

    // ── 4. Budget depletion: a fleet that burns out ───────────────────
    let tight = cfg
        .to_builder()
        .worker_capacity(1.0) // one-ish release per worker lifetime
        .build()
        .expect("valid depletion configuration");
    let engine = Method::Pdce.engine(&tight.params);
    let report = StreamDriver::new(engine.as_ref(), tight).run(&arrivals);
    let retired: usize = report.windows.iter().map(|w| w.workers_retired).sum();
    println!(
        "with lifetime capacity ε = 1.0, {} workers retired exhausted\n",
        retired
    );

    // ── 5. Sharded execution: exact on shard-disjoint input ───────────
    // Four clusters, one per cell of a 2×2 grid; service discs interior
    // to their cells, so no pair ever crosses a boundary.
    let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
    let mut events = Vec::new();
    let mut ids = 0u32;
    for (cx, cy) in [(25.0, 25.0), (75.0, 25.0), (25.0, 75.0), (75.0, 75.0)] {
        for k in 0..8u32 {
            let a = k as f64;
            events.push(ArrivalEvent::Worker(WorkerArrival {
                id: ids + k,
                time: 0.0,
                worker: Worker::new(Point::new(cx + a.cos() * 3.0, cy + a.sin() * 3.0), 8.0),
            }));
            events.push(ArrivalEvent::Task(TaskArrival {
                id: ids + k,
                time: 20.0 + 40.0 * a,
                task: Task::new(Point::new(cx + a.sin() * 4.0, cy - a.cos() * 4.0), 4.5),
            }));
        }
        ids += 8;
    }
    let disjoint = ArrivalStream::new(events);
    assert!(disjoint.is_shard_disjoint(&part));

    let engine = Method::Puce.engine(&cfg.params);
    let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&disjoint);
    let sharded = run_sharded(engine.as_ref(), &disjoint, &cfg, &part);
    println!("{}", sharded.render());
    assert_eq!(sharded.matched(), flat.matched());
    assert!((sharded.total_utility() - flat.total_utility()).abs() < 1e-9);
    println!(
        "sharded == unsharded: {} matched, utility {:.2} — exact ✓\n",
        flat.matched(),
        flat.total_utility()
    );

    // ── 6. The boundary halo: cross-shard pairs recovered ─────────────
    // Move every cluster onto the x = 50 boundary: workers left of it,
    // their only reachable tasks right of it. Drop-pairs sharding loses
    // every pair; the halo protocol routes the boundary workers into
    // the neighbouring shard's windows and a deterministic
    // reconciliation keeps each worker assigned at most once.
    let mut events = Vec::new();
    for k in 0..8u32 {
        let y = 10.0 + 10.0 * k as f64;
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: k,
            time: 0.0,
            worker: Worker::new(Point::new(49.0, y), 3.0),
        }));
        events.push(ArrivalEvent::Task(TaskArrival {
            id: k,
            time: 20.0 + 40.0 * k as f64,
            task: Task::new(Point::new(51.0, y), 4.5),
        }));
    }
    let crossing = ArrivalStream::new(events);
    assert!(!crossing.is_shard_disjoint(&part));
    let dropped = run_sharded(engine.as_ref(), &crossing, &cfg, &part);
    let halo = run_sharded_halo(engine.as_ref(), &crossing, &cfg, &part);
    println!(
        "crossing stream: drop-pairs matched {} (utility {:.2}) | halo matched {} \
         (utility {:.2}) — cross-shard pairs recovered ✓\n",
        dropped.matched(),
        dropped.total_utility(),
        halo.matched(),
        halo.total_utility()
    );
    assert!(halo.matched() > dropped.matched());

    // ── 7. Durable sessions: snapshot, crash, restore, resume ─────────
    // A session snapshotted at a window boundary serializes to a
    // versioned JSON document. Drop the session (the "crash"), restore
    // from the bytes, push the rest of the stream — the drained run is
    // bit-for-bit identical to one that never stopped: same fates, same
    // window cuts, same privacy spend (each release charged exactly
    // once, even across the restart), same outcome log.
    let baseline = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&arrivals);

    let events = arrivals.events();
    let split = events.len() / 2;
    let mut session = StreamSession::new(engine.as_ref(), cfg.clone());
    for e in &events[..split] {
        session.push(*e);
    }
    session.advance_to(events[split - 1].time());
    let json = session.snapshot().to_json(); // → durable storage
    drop(session); // the crash

    let snapshot = SessionSnapshot::from_json(&json).expect("snapshot parses");
    let mut session =
        StreamSession::restore(engine.as_ref(), cfg.clone(), &snapshot).expect("config matches");
    for e in &events[split..] {
        session.push(*e);
    }
    let resumed = session.close();
    assert_eq!(resumed.without_timing(), baseline.without_timing());
    println!(
        "resumed after a crash at event {split}/{}: {} matched, spend ε {:.3} — \
         bit-for-bit with the uninterrupted run ✓",
        events.len(),
        resumed.matched(),
        resumed.total_epsilon(),
    );

    // Restoring under a different configuration is refused with a typed
    // error naming the first offending field — a changed config would
    // silently diverge rather than fail.
    let tightened = cfg
        .to_builder()
        .worker_capacity(1.0)
        .build()
        .expect("valid tightened configuration");
    let err = StreamSession::restore(engine.as_ref(), tightened, &snapshot)
        .err()
        .expect("changed config must be rejected");
    assert_eq!(
        err,
        SnapshotError::ConfigMismatch {
            field: "worker_capacity"
        }
    );
    println!("restore under a changed config: rejected ({err}) ✓");
}
